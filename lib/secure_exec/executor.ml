open Snf_relational
module Metrics = Snf_obs.Metrics
module Span = Snf_obs.Span
module Wiretrace = Snf_obs.Wiretrace
module Partition = Snf_core.Partition
module Ndet = Snf_crypto.Ndet

(* Query-level totals, published once per [run] from the same values that
   land in [trace] — the Snf_obs totals therefore match the trace exactly. *)
let m_queries = Metrics.counter "exec.query.count"
let m_scanned = Metrics.counter "exec.query.scanned_cells"
let m_probes = Metrics.counter "exec.query.index_probes"
let m_comparisons = Metrics.counter "exec.query.comparisons"
let m_rows_processed = Metrics.counter "exec.query.rows_processed"
let m_result_rows = Metrics.counter "exec.query.result_rows"
let m_tokens = Metrics.counter "exec.query.tokens_minted"
let h_result_rows = Metrics.histogram "exec.query.result_rows_hist"

(* Batch-level totals: how many [run_batch] passes ran, how many queries
   they carried, and how often the shared oblivious alignment was built
   vs. reused within a batch. *)
let m_batches = Metrics.counter "exec.batch.count"
let m_batch_queries = Metrics.counter "exec.batch.queries"
let m_shared_joins = Metrics.counter "exec.batch.shared_joins"
let m_join_reuses = Metrics.counter "exec.batch.join_reuses"

type mode = [ `Sort_merge | `Oram | `Binning of int ]

let mode_name = function
  | `Sort_merge -> "sort-merge"
  | `Oram -> "oram"
  | `Binning b -> Printf.sprintf "binning(%d)" b

type trace = {
  plan : Planner.plan;
  decision : Planner.decision;
      (* the planner's full verdict for this query: estimate, rejected
         candidates, truncation notes, cache hit/miss — what EXPLAIN shows *)
  mode : mode;
  scanned_cells : int;
  index_probes : int;   (* predicate evaluations served by an equality index *)
  comparisons : int;
  rows_processed : int;
  oram_bucket_touches : int;
  binning_retrieved : int;
  result_rows : int;
  wire_requests : int;
  wire_bytes_up : int;
  wire_bytes_down : int;
  estimated_seconds : float;
}

let pred_holds (p : Query.pred) v =
  match p with
  | Query.Point (_, want) -> Value.equal v want
  | Query.Range (_, lo, hi) -> Value.compare lo v <= 0 && Value.compare v hi <= 0

(* The client's view of a planned leaf: label and row count, as reported
   by the server's Describe response. Everything else — ciphertexts,
   masks, index slots — arrives through further messages. *)
type leaf_view = { lv_label : string; lv_rows : int }

(* Column schemes come from the representation — client knowledge — never
   from server metadata: a lying scheme tag could otherwise redirect
   decryption. *)
let scheme_table (rep : Partition.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (l : Partition.leaf) ->
      List.iter
        (fun (cs : Partition.column_spec) ->
          Hashtbl.replace tbl (l.Partition.label, cs.Partition.name) cs.Partition.scheme)
        l.Partition.columns)
    rep;
  fun label attr ->
    match Hashtbl.find_opt tbl (label, attr) with
    | Some s -> s
    | None -> raise Not_found

(* A predicate after the minting phase: either an equality index already
   served its slot list (§V-D "leakage as indexing"), or the server must
   scan the column under a minted token shipped in the Filter message.
   Indexed predicates keep the source predicate so the client can
   re-verify fetched rows against it — the index is server state and may
   be stale. *)
type compiled_pred =
  | Indexed of Query.pred * int list
  | Scan of Wire.filter_op

(* Client role: mint the token for one predicate. Under [use_index],
   point predicates are first offered to the server's equality index with
   an Index_probe message — sent (and answered by an index lookup) even
   when the token yields no canonical key, so index accounting does not
   depend on the token's shape. Probing happens sequentially, here —
   lazy index builds are a server-side cache write which must not race
   with the parallel filter phase. *)
let compile_pred ~use_index ~cache client conn ~scheme_of (lv : leaf_view) index_probes
    (p : Query.pred) =
  let attr = Query.pred_attr p in
  let label = lv.lv_label in
  let scheme = scheme_of label attr in
  let indexed =
    if not use_index then None
    else
      match p with
      | Query.Point (_, v) -> (
        let key =
          Option.bind
            (Enc_relation.eq_token ~cache client ~leaf:label ~attr ~scheme v)
            Enc_relation.index_key_of_token
        in
        match Server_api.index_probe conn ~leaf:label ~attr ~key with
        | Some slots ->
          List.iter
            (fun s ->
              if s < 0 || s >= lv.lv_rows then
                Integrity.fail ~leaf:label ~attr ~where:"index"
                  (Printf.sprintf "equality-index slot %d outside [0, %d)" s lv.lv_rows))
            slots;
          index_probes := !index_probes + 1 + List.length slots;
          Some slots
        | None -> None)
      | _ -> None
  in
  match indexed with
  | Some slots -> Indexed (p, slots)
  | None ->
    Metrics.incr m_tokens;
    let op =
      match p with
      | Query.Point (_, v) -> (
        match Enc_relation.eq_token ~cache client ~leaf:label ~attr ~scheme v with
        | Some tok -> Wire.F_eq (attr, tok)
        | None -> invalid_arg "Executor: planner homed an unsupported point predicate")
      | Query.Range (_, lo, hi) -> (
        match Enc_relation.range_token ~cache client ~leaf:label ~attr ~scheme ~lo ~hi with
        | Some tok -> Wire.F_range (attr, tok)
        | None -> invalid_arg "Executor: planner homed an unsupported range predicate")
    in
    Scan op

let filter_ops compiled =
  List.map (function Indexed (_, slots) -> Wire.F_slots slots | Scan op -> op) compiled

(* Fetch a window of ciphertext cells — (attrs × slots) of one leaf — in
   a single message and expose it as a decrypt-on-demand lookup. Nothing
   is decrypted until asked for, so over-fetching (ORAM columns, binning
   decoys) costs wire bytes, not decrypt work. *)
let fetch_window ~cache client conn ~scheme_of ~label ~attrs ~slots =
  let pos = Hashtbl.create 16 in
  List.iteri (fun j s -> if not (Hashtbl.mem pos s) then Hashtbl.add pos s j) slots;
  let cols = Server_api.fetch_rows conn ~leaf:label ~attrs ~slots in
  if Array.length cols <> List.length attrs then
    invalid_arg "Executor: row fetch returned a wrong number of columns";
  let col_of = Hashtbl.create 8 in
  List.iteri (fun i a -> Hashtbl.replace col_of a cols.(i)) attrs;
  fun attr slot ->
    let cells =
      match Hashtbl.find_opt col_of attr with
      | Some cells -> cells
      | None -> raise Not_found
    in
    let j =
      match Hashtbl.find_opt pos slot with
      | Some j -> j
      | None -> invalid_arg "Executor: slot outside the fetched window"
    in
    if j >= Array.length cells then
      invalid_arg "Executor: row fetch returned a short column";
    Enc_relation.decrypt_cell ~cache client ~leaf:label ~attr
      ~scheme:(scheme_of label attr) cells.(j)

let no_window _attr _slot = invalid_arg "Executor: no attributes were fetched"

let window ~cache client conn ~scheme_of ~label ~attrs ~slots =
  if attrs = [] then no_window
  else fetch_window ~cache client conn ~scheme_of ~label ~attrs ~slots

(* Client-side re-verification of index-served predicates: the equality
   index is mutable server state, so a row it returned must still satisfy
   the predicate once decrypted — a stale entry surfaces as detected
   corruption, never as a wrong answer. Scanned predicates need no check:
   their ciphertext test ran on the authenticated cells themselves. *)
let verify_indexed value_at label compiled slot =
  List.iter
    (function
      | Indexed (p, _) ->
        let attr = Query.pred_attr p in
        if not (pred_holds p (value_at attr slot)) then
          Integrity.fail ~leaf:label ~attr ~where:"index"
            "stale equality-index entry: fetched row does not satisfy its predicate"
      | Scan _ -> ())
    compiled

let indexed_attrs compiled =
  List.filter_map
    (function Indexed (p, _) -> Some (Query.pred_attr p) | Scan _ -> None)
    compiled

let build_result (q : Query.t) rows =
  let witness_ty i =
    List.fold_left
      (fun acc row -> match acc with Some _ -> acc | None -> Value.type_of (List.nth row i))
      None rows
    |> Option.value ~default:Value.TText
  in
  let schema =
    Schema.of_attributes
      (List.mapi (fun i a -> Attribute.make a (witness_ty i)) q.Query.select)
  in
  Relation.create schema (List.map Array.of_list rows)

let preds_at (plan : Planner.plan) label =
  List.filter_map
    (fun (p, home) -> if home = label then Some p else None)
    plan.Planner.pred_home

let proj_leaf (plan : Planner.plan) attr =
  match List.assoc_opt attr plan.Planner.proj_home with
  | Some l -> l
  | None -> invalid_arg "Executor: projection attribute without a home leaf"

(* The anchor drives the per-row fetches of the ORAM/binning paths, so the
   best anchor is the most selective one: fewest mask survivors, ties
   broken toward more homed predicates, then plan order. *)
let anchor_label (plan : Planner.plan) lvs masks =
  let popcount m = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m in
  let scored =
    List.map2
      (fun lv mask ->
        (popcount mask, -List.length (preds_at plan lv.lv_label), lv.lv_label))
      lvs masks
  in
  match List.stable_sort compare scored with
  | (_, _, label) :: _ -> label
  | [] -> invalid_arg "Executor: empty plan"

let needed_attrs_of_leaf (q : Query.t) plan label =
  let projs = List.filter (fun a -> proj_leaf plan a = label) q.Query.select in
  let preds = List.map Query.pred_attr (preds_at plan label) in
  List.sort_uniq String.compare (projs @ preds)

(* Attributes the client must fetch from a leaf for verification and
   projection: the select attributes homed there plus the predicates an
   index answered (those need re-verification). *)
let fetched_attrs (q : Query.t) plan label compiled =
  let projs = List.filter (fun a -> proj_leaf plan a = label) q.Query.select in
  List.sort_uniq String.compare (projs @ indexed_attrs compiled)

(* Assemble the output rows given, per output tid, a function giving the
   decrypted value of (leaf label, attr). *)
let project_rows (q : Query.t) plan matches value_of =
  List.map
    (fun m -> List.map (fun attr -> value_of m (proj_leaf plan attr) attr) q.Query.select)
    matches

(* --- single leaf -------------------------------------------------------- *)

let run_single ~drop_tid ~cache client conn ~scheme_of q plan (lv : leaf_view) compiled
    mask =
  let label = lv.lv_label in
  let matches =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "single") ] @@ fun () ->
    let n = lv.lv_rows in
    let slots = ref [] in
    Array.iteri
      (fun i keep ->
        if keep && not (drop_tid (Enc_relation.tid_at client ~leaf:label ~rows:n i)) then
          slots := i :: !slots)
      mask;
    List.rev !slots
  in
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  let attrs = fetched_attrs q plan label compiled in
  let value_at = window ~cache client conn ~scheme_of ~label ~attrs ~slots:matches in
  List.iter (verify_indexed value_at label compiled) matches;
  let rows =
    project_rows q plan matches (fun slot _label attr -> value_at attr slot)
  in
  build_result q rows

(* --- sort-merge reconstruction ------------------------------------------ *)

(* The join works on tid ciphertext columns; fetch each planned leaf's
   column and rebuild a minimal [enc_leaf] around it. [Server_api]
   returns the same physical array while the server's bytes are
   unchanged, so [Enc_relation.decrypt_tids_cached] still recognizes a
   stable leaf across queries on one connection. *)
let synthetic_leaf conn (lv : leaf_view) =
  let tids = Server_api.fetch_tids conn ~leaf:lv.lv_label in
  if Array.length tids <> lv.lv_rows then
    Integrity.fail ~leaf:lv.lv_label ~where:"store"
      "tid column length disagrees with the described row count";
  { Enc_relation.label = lv.lv_label; row_count = lv.lv_rows; tids; columns = [] }

(* Second half of the sort-merge path, from an aligned [matched] array
   ((tid, one slot per leaf in [lvs] order) for every surviving tid) to
   the decrypted result. Shared verbatim between [run_sort_merge] and the
   batched path, which computes [matched] from a shared alignment. *)
let sort_merge_decrypt ~cache client conn ~scheme_of q plan lvs compiled matched =
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  let windows =
    List.mapi
      (fun i lv ->
        let attrs = fetched_attrs q plan lv.lv_label (List.nth compiled i) in
        let slots =
          Array.to_seq matched
          |> Seq.map (fun (_, slots) -> List.nth slots i)
          |> List.of_seq
          |> List.sort_uniq compare
        in
        ( lv.lv_label,
          window ~cache client conn ~scheme_of ~label:lv.lv_label ~attrs ~slots ))
      lvs
  in
  let value_in label = List.assoc label windows in
  Array.iter
    (fun (_, slots) ->
      List.iteri
        (fun i lv ->
          verify_indexed (value_in lv.lv_label) lv.lv_label (List.nth compiled i)
            (List.nth slots i))
        lvs)
    matched;
  let label_index = List.mapi (fun i lv -> (lv.lv_label, i)) lvs in
  let rows =
    project_rows q plan (Array.to_list matched) (fun (_, slots) label attr ->
        let i = List.assoc label label_index in
        (value_in label) attr (List.nth slots i))
  in
  build_result q rows

let run_sort_merge ~drop_tid ~cache ?tids_for client conn ~scheme_of q plan lvs compiled
    masks stats =
  let matched =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "sort_merge") ] @@ fun () ->
    let enc_leaves = List.map (synthetic_leaf conn) lvs in
    Oblivious_join.join_many ?tids_for ~masks:(List.combine enc_leaves masks) stats client
    |> Array.to_seq
    |> Seq.filter (fun (tid, _) -> not (drop_tid tid))
    |> Array.of_seq
  in
  sort_merge_decrypt ~cache client conn ~scheme_of q plan lvs compiled matched

(* --- anchor + fetch reconstructions (ORAM / binning) --------------------- *)

(* Partner-leaf access plumbing shared by the ORAM and binning paths: for a
   tid, retrieve the decrypted values of the attrs this query needs from
   that leaf. *)
type fetcher = {
  fetch : int -> (string * Value.t) list;  (* tid -> (attr, value) *)
  leaf_label : string;
}

(* ORAM partner access over the boundary: fetch the partner's needed
   ciphertexts once, decrypt and seal them into uniform blocks, install
   the blocks into a server-side per-connection Path ORAM, then read one
   sealed block per anchor survivor. The server observes the install, the
   root-to-leaf bucket paths and nothing else. *)
let oram_fetcher ~cache client conn ~scheme_of q plan oram_touches ~seed
    (lv : leaf_view) =
  let label = lv.lv_label in
  let needed = needed_attrs_of_leaf q plan label in
  let n = lv.lv_rows in
  let value_at =
    if n = 0 then no_window
    else
      window ~cache client conn ~scheme_of ~label ~attrs:needed
        ~slots:(List.init n Fun.id)
  in
  let payload slot =
    Marshal.to_string (List.map (fun a -> (a, value_at a slot)) needed) []
  in
  let block_size =
    let m = ref 1 in
    for slot = 0 to n - 1 do
      m := max !m (String.length (payload slot))
    done;
    !m
  in
  let pad s = s ^ String.make (block_size - String.length s) '\x00' in
  let blocks =
    Array.init n (fun slot -> Enc_relation.oram_seal client ~leaf:label ~slot (pad (payload slot)))
  in
  let setup_touches =
    Server_api.oram_init conn ~leaf:label ~seed
      ~block_size:(Ndet.ciphertext_length block_size) ~blocks
  in
  let counted = ref setup_touches in
  { leaf_label = label;
    fetch =
      (fun tid ->
        let slot = Enc_relation.row_position client ~leaf:label ~rows:n tid in
        let block, touches = Server_api.oram_read conn ~leaf:label ~slot in
        oram_touches := !oram_touches + (touches - !counted);
        counted := touches;
        let data = Enc_relation.oram_open client ~leaf:label block in
        (Marshal.from_string data 0 : (string * Value.t) list)) }

let binning_fetcher ~cache client conn ~scheme_of q plan bin_size bin_retrieved ~wanted
    (lv : leaf_view) =
  let label = lv.lv_label in
  let needed = needed_attrs_of_leaf q plan label in
  let n = lv.lv_rows in
  (* PANDA-style: one schedule of fixed-size keyed bins covering every
     wanted slot; the server ships whole bins, so it learns only which bins
     were touched. The enclave keeps the wanted rows. *)
  let wanted_slots =
    List.map (fun tid -> Enc_relation.row_position client ~leaf:label ~rows:n tid) wanted
  in
  let schedule =
    if n = 0 || wanted_slots = [] then None
    else
      Some
        (Binning.schedule
           ~key:(Enc_relation.binning_key client ~leaf:label)
           ~universe:n ~bin_size:(min bin_size n) wanted_slots)
  in
  (match schedule with
   | Some s -> bin_retrieved := !bin_retrieved + s.Binning.retrieved
   | None -> ());
  (* The whole bins cross the wire — decoy ciphertexts included, which is
     the point — but only wanted rows are ever decrypted. *)
  let bin_slots =
    match schedule with
    | Some s -> List.sort_uniq compare (List.concat s.Binning.bins)
    | None -> []
  in
  let value_at =
    if bin_slots = [] then no_window
    else window ~cache client conn ~scheme_of ~label ~attrs:needed ~slots:bin_slots
  in
  { leaf_label = label;
    fetch =
      (fun tid ->
        let slot = Enc_relation.row_position client ~leaf:label ~rows:n tid in
        (match schedule with
         | Some s ->
           (* the slot must be inside a requested bin *)
           assert (List.exists (List.mem slot) s.Binning.bins)
         | None -> ());
        List.map (fun a -> (a, value_at a slot)) needed) }

let run_anchor_fetch ~drop_tid ~cache client conn ~scheme_of q plan lvs compiled masks
    ~make_fetcher =
  let anchor = anchor_label plan lvs masks in
  let anchor_lv, anchor_mask =
    List.combine lvs masks |> List.find (fun (lv, _) -> lv.lv_label = anchor)
  in
  let anchor_compiled =
    List.combine lvs compiled |> List.find (fun (lv, _) -> lv.lv_label = anchor) |> snd
  in
  let n = anchor_lv.lv_rows in
  (* Reconstruction: anchor selection, partner fetches, and the enclave's
     post-filter — everything that decides which tids survive. *)
  let matches =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "anchor_fetch") ]
    @@ fun () ->
    let partners = List.filter (fun lv -> lv.lv_label <> anchor) lvs in
    let selected_tids = ref [] in
    Array.iteri
      (fun slot keep ->
        if keep then begin
          let tid = Enc_relation.tid_at client ~leaf:anchor ~rows:n slot in
          if not (drop_tid tid) then selected_tids := tid :: !selected_tids
        end)
      anchor_mask;
    let fetchers = List.map (make_fetcher ~wanted:(List.rev !selected_tids)) partners in
    List.filter_map
      (fun tid ->
        let partner_values =
          List.map (fun f -> (f.leaf_label, f.fetch tid)) fetchers
        in
        (* Post-filter: predicates homed at partner leaves. *)
        let passes =
          List.for_all
            (fun (label, values) ->
              List.for_all
                (fun p ->
                  match List.assoc_opt (Query.pred_attr p) values with
                  | Some v -> pred_holds p v
                  | None -> invalid_arg "Executor: fetched row misses predicate attr")
                (preds_at plan label))
            partner_values
        in
        if passes then Some (tid, partner_values) else None)
      (List.rev !selected_tids)
  in
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  let anchor_slots =
    List.map
      (fun (tid, _) -> Enc_relation.row_position client ~leaf:anchor ~rows:n tid)
      matches
    |> List.sort_uniq compare
  in
  let anchor_attrs = fetched_attrs q plan anchor anchor_compiled in
  let value_at =
    window ~cache client conn ~scheme_of ~label:anchor ~attrs:anchor_attrs
      ~slots:anchor_slots
  in
  List.iter
    (fun (tid, _) ->
      verify_indexed value_at anchor anchor_compiled
        (Enc_relation.row_position client ~leaf:anchor ~rows:n tid))
    matches;
  let rows =
    List.map
      (fun (tid, partner_values) ->
        let value_of label attr =
          if label = anchor then
            value_at attr (Enc_relation.row_position client ~leaf:anchor ~rows:n tid)
          else List.assoc attr (List.assoc label partner_values)
        in
        List.map (fun attr -> value_of (proj_leaf plan attr) attr) q.Query.select)
      matches
  in
  build_result q rows

(* ------------------------------------------------------------------------ *)

let run_conn ?(mode = `Sort_merge) ?(params = Cost_model.default) ?planner
    ?(use_index = false) ?(use_tid_cache = true) ?(use_mapping_cache = false)
    ?(drop_tid = fun _ -> false) client conn rep q =
  let cache = use_mapping_cache in
  match Planner.decide ?handle:planner rep q with
  | Error e -> Error e
  | Ok decision ->
    let plan = decision.Planner.d_plan in
    let scheme_of = scheme_table rep in
    Wiretrace.mark "query.begin";
    let wire0 = Server_api.stats conn in
    let relation_name, leaf_dir = Server_api.describe conn in
    Span.with_ ~name:"query"
      ~attrs:
        [ ("mode", mode_name mode);
          ("relation", relation_name);
          ("backend", Server_api.backend_name conn);
          ("leaves", string_of_int (List.length plan.Planner.leaves)) ]
    @@ fun () ->
    let scanned = ref 0 in
    let index_probes = ref 0 in
    let stats = Oblivious_join.fresh_stats () in
    let oram_touches = ref 0 in
    let bin_retrieved = ref 0 in
    (* Storage-integrity gate: the planned leaves must exist and be
       structurally sound (dropped or truncated leaves are corruption,
       not planner errors — the plan was built from the representation). *)
    Server_api.check_shape conn;
    let lvs =
      List.map
        (fun label ->
          match List.assoc_opt label leaf_dir with
          | Some rows -> { lv_label = label; lv_rows = rows }
          | None ->
            Integrity.fail ~leaf:label ~where:"store"
              "planned leaf missing from the encrypted store")
        plan.Planner.leaves
    in
    (* Phase 1 (sequential): mint tokens and probe the server's equality
       indexes — lazy index builds are a server-side cache write which
       must not race. Phase 2 (parallel): the per-leaf Filter round trips
       are independent, so they fan out one leaf per domain. *)
    let compiled =
      Span.with_ ~name:"query.mint_tokens" @@ fun () ->
      List.map
        (fun lv ->
          List.map
            (fun p ->
              compile_pred ~use_index ~cache client conn ~scheme_of lv index_probes p)
            (preds_at plan lv.lv_label))
        lvs
    in
    let filtered =
      Span.with_ ~name:"query.server_filter" @@ fun () ->
      (* The per-leaf Filter round trips race across domains — the only
         place server calls are concurrent — so the recorder is told to
         canonicalise their order at trace finalisation. *)
      Wiretrace.unordered @@ fun () ->
      Parallel.map_list
        ~domains:(Parallel.domain_count ())
        (fun (lv, compiled) ->
          Span.with_ ~name:"query.filter_leaf" ~attrs:[ ("leaf", lv.lv_label) ]
          @@ fun () ->
          let mask, leaf_scanned =
            Server_api.filter conn ~leaf:lv.lv_label ~ops:(filter_ops compiled)
          in
          if Array.length mask <> lv.lv_rows then
            Integrity.fail ~leaf:lv.lv_label ~where:"store"
              "filter mask length disagrees with the described row count";
          (mask, leaf_scanned))
        (List.combine lvs compiled)
    in
    let masks = List.map fst filtered in
    List.iter (fun (_, s) -> scanned := !scanned + s) filtered;
    let result =
      match (lvs, masks) with
      | [ lv ], [ mask ] ->
        run_single ~drop_tid ~cache client conn ~scheme_of q plan lv (List.hd compiled)
          mask
      | _ -> (
        match mode with
        | `Sort_merge ->
          (* The join's tid decrypts are memoized per (leaf, key epoch)
             when the cache is on; the cached path still authenticates on
             every miss, and corrupted leaf copies always miss (see
             [Enc_relation.decrypt_tids_cached]). *)
          let tids_for =
            if use_tid_cache then Some (Enc_relation.decrypt_tids_cached client)
            else None
          in
          run_sort_merge ~drop_tid ~cache ?tids_for client conn ~scheme_of q plan lvs
            compiled masks stats
        | `Oram ->
          (* Per-partner server-side ORAM sessions; seeds are fixed by
             partner order, so the bucket-touch trace is deterministic
             and backend-independent. *)
          let next_seed = ref 0x09a7 in
          run_anchor_fetch ~drop_tid ~cache client conn ~scheme_of q plan lvs compiled
            masks
            ~make_fetcher:(fun ~wanted lv ->
              ignore wanted;
              let seed = !next_seed in
              incr next_seed;
              oram_fetcher ~cache client conn ~scheme_of q plan oram_touches ~seed lv)
        | `Binning bin_size ->
          run_anchor_fetch ~drop_tid ~cache client conn ~scheme_of q plan lvs compiled
            masks
            ~make_fetcher:(binning_fetcher ~cache client conn ~scheme_of q plan bin_size
                             bin_retrieved))
    in
    let wire1 = Server_api.stats conn in
    let trace =
      { plan;
        decision;
        mode;
        scanned_cells = !scanned;
        index_probes = !index_probes;
        comparisons = stats.Oblivious_join.comparisons;
        rows_processed = stats.Oblivious_join.rows_processed;
        oram_bucket_touches = !oram_touches;
        binning_retrieved = !bin_retrieved;
        result_rows = Relation.cardinality result;
        wire_requests = wire1.Server_api.requests - wire0.Server_api.requests;
        wire_bytes_up = wire1.Server_api.bytes_up - wire0.Server_api.bytes_up;
        wire_bytes_down = wire1.Server_api.bytes_down - wire0.Server_api.bytes_down;
        estimated_seconds =
          Cost_model.trace_seconds params ~comparisons:stats.Oblivious_join.comparisons
            ~rows_processed:stats.Oblivious_join.rows_processed ~scanned_cells:!scanned
            ~oram_bucket_touches:!oram_touches ~retrieved_rows:!bin_retrieved }
    in
    Metrics.incr m_queries;
    Metrics.add m_scanned trace.scanned_cells;
    Metrics.add m_probes trace.index_probes;
    Metrics.add m_comparisons trace.comparisons;
    Metrics.add m_rows_processed trace.rows_processed;
    Metrics.add m_result_rows trace.result_rows;
    Metrics.observe h_result_rows trace.result_rows;
    Wiretrace.mark "query.end";
    Ok (result, trace)

let run ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache ?drop_tid
    client enc rep q =
  (* Compatibility entry point: a transient in-process connection over the
     given store. [System] holds a persistent connection instead. *)
  let conn = Server_api.connect (module Backend_mem) (Backend_mem.of_store enc) in
  Fun.protect
    ~finally:(fun () -> Server_api.close conn)
    (fun () ->
      run_conn ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache
        ?drop_tid client conn rep q)

(* --- batched execution ---------------------------------------------------- *)

(* K queries, one shared pass. The wire attribution invariant: every byte
   and request of the batch lands in exactly one query's trace — each
   query carries its own minting and reconstruction deltas, and the
   shared traffic (Describe/Check_shape plus the single Q_batch round
   trip) is charged to the first executed query — so the traces still sum
   exactly to the global [exec.wire.*] counter deltas, like K singles
   would. Everything client-side runs on the calling domain (parallelism
   stays inside the bitonic kernels), so counter totals are bit-identical
   for any SNF_DOMAINS. *)
let run_batch ?(mode = `Sort_merge) ?(params = Cost_model.default) ?planner
    ?(use_index = false) ?(use_tid_cache = true) ?(use_mapping_cache = true)
    ?(drop_tid = fun _ -> false) client conn rep qs =
  let cache = use_mapping_cache in
  let scheme_of = scheme_table rep in
  let plans = List.map (fun q -> (q, Planner.decide ?handle:planner rep q)) qs in
  if not (List.exists (fun (_, pl) -> Result.is_ok pl) plans) then
    (* Nothing executable: K planner errors, no server contact, no
       counters — the same outcome K [run_conn] calls would produce. *)
    List.map
      (function
        | _, Ok _ -> assert false
        | _, Error e -> Error e)
      plans
  else begin
    Metrics.incr m_batches;
    Metrics.add m_batch_queries (List.length qs);
    Wiretrace.mark ~summary:[ ("k", string_of_int (List.length qs)) ] "batch.begin";
    let wire_at () = Server_api.stats conn in
    let wire_delta a b =
      ( b.Server_api.requests - a.Server_api.requests,
        b.Server_api.bytes_up - a.Server_api.bytes_up,
        b.Server_api.bytes_down - a.Server_api.bytes_down )
    in
    let add3 (a, b, c) (a', b', c') = (a + a', b + b', c + c') in
    let w0 = wire_at () in
    let relation_name, leaf_dir = Server_api.describe conn in
    Span.with_ ~name:"query.batch"
      ~attrs:
        [ ("size", string_of_int (List.length qs));
          ("mode", mode_name mode);
          ("relation", relation_name);
          ("backend", Server_api.backend_name conn) ]
    @@ fun () ->
    Server_api.check_shape conn;
    let w_admin = wire_at () in
    (* Phase 1 (sequential, per query): mint tokens and probe equality
       indexes, snapshotting the connection stats around each query so
       every trace carries its own minting traffic. *)
    let prepped =
      Span.with_ ~name:"query.mint_tokens" @@ fun () ->
      List.map
        (fun (q, pl) ->
          match pl with
          | Error e -> Error e
          | Ok decision ->
            let plan = decision.Planner.d_plan in
            let lvs =
              List.map
                (fun label ->
                  match List.assoc_opt label leaf_dir with
                  | Some rows -> { lv_label = label; lv_rows = rows }
                  | None ->
                    Integrity.fail ~leaf:label ~where:"store"
                      "planned leaf missing from the encrypted store")
                plan.Planner.leaves
            in
            let index_probes = ref 0 in
            let wa = wire_at () in
            let compiled =
              List.map
                (fun lv ->
                  List.map
                    (fun p ->
                      compile_pred ~use_index ~cache client conn ~scheme_of lv
                        index_probes p)
                    (preds_at plan lv.lv_label))
                lvs
            in
            Ok (q, decision, lvs, compiled, !index_probes, wire_delta wa (wire_at ())))
        plans
    in
    (* Phase 2: ONE Q_batch round trip answers every executable query's
       per-leaf filters; the server walks each touched leaf once. *)
    let batch_queries =
      List.filter_map
        (function
          | Error _ -> None
          | Ok (_, _, lvs, compiled, _, _) ->
            Some (List.map2 (fun lv ops -> (lv.lv_label, filter_ops ops)) lvs compiled))
        prepped
    in
    let wf0 = wire_at () in
    let batch_results =
      Span.with_ ~name:"query.server_filter" ~attrs:[ ("path", "batch") ] @@ fun () ->
      Server_api.filter_batch conn ~queries:batch_queries
    in
    let shared_wire = add3 (wire_delta w0 w_admin) (wire_delta wf0 (wire_at ())) in
    (* Shared oblivious pass: one all-true alignment per distinct leaf
       set, built on first use (charged to the query that triggers it)
       and reused by every later query over the same leaves. Filtering
       the full alignment by a query's masks afterwards equals joining
       under those masks, because tids are unique per leaf. *)
    let joint_memo : (string, string list * (int * int list) array) Hashtbl.t =
      Hashtbl.create 4
    in
    let shared_alignment stats lvs =
      let labels = List.sort String.compare (List.map (fun lv -> lv.lv_label) lvs) in
      let key = String.concat "\x00" labels in
      match Hashtbl.find_opt joint_memo key with
      | Some entry ->
        Metrics.incr m_join_reuses;
        entry
      | None ->
        Metrics.incr m_shared_joins;
        let lvs_sorted =
          List.map (fun label -> List.find (fun lv -> lv.lv_label = label) lvs) labels
        in
        let enc_leaves = List.map (synthetic_leaf conn) lvs_sorted in
        let full = List.map (fun lv -> Array.make lv.lv_rows true) lvs_sorted in
        let tids_for =
          if use_tid_cache then Some (Enc_relation.decrypt_tids_cached client) else None
        in
        let aligned =
          Oblivious_join.join_many ?tids_for ~masks:(List.combine enc_leaves full) stats
            client
        in
        let entry = (labels, aligned) in
        Hashtbl.add joint_memo key entry;
        entry
    in
    let remaining = ref batch_results in
    let next_result () =
      match !remaining with
      | r :: tl ->
        remaining := tl;
        r
      | [] -> invalid_arg "Executor: batch response shorter than the batch"
    in
    (* Batch-member index: positions within [batch_queries], i.e. only
       executable queries count — the same indexing the Q_batch summary
       groups carry, so the recorder can re-attribute the shared round
       trip to the right query windows. *)
    let bq_idx = ref 0 in
    let outcomes =
      List.map
        (function
          | Error e -> Error e
          | Ok (q, decision, lvs, compiled, index_probes, mint_wire) ->
            let plan = decision.Planner.d_plan in
            Wiretrace.mark ~summary:[ ("q", string_of_int !bq_idx) ] "query.begin";
            incr bq_idx;
            let per_leaf = next_result () in
            if List.length per_leaf <> List.length lvs then
              invalid_arg "Executor: batch response entry count disagrees with the plan";
            let masks =
              List.map2
                (fun lv (mask, _) ->
                  if Array.length mask <> lv.lv_rows then
                    Integrity.fail ~leaf:lv.lv_label ~where:"store"
                      "filter mask length disagrees with the described row count";
                  mask)
                lvs per_leaf
            in
            let scanned = List.fold_left (fun acc (_, s) -> acc + s) 0 per_leaf in
            let stats = Oblivious_join.fresh_stats () in
            let oram_touches = ref 0 in
            let bin_retrieved = ref 0 in
            let wr0 = wire_at () in
            let result =
              match (lvs, masks) with
              | [ lv ], [ mask ] ->
                run_single ~drop_tid ~cache client conn ~scheme_of q plan lv
                  (List.hd compiled) mask
              | _ -> (
                match mode with
                | `Sort_merge ->
                  let matched =
                    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "batch") ]
                    @@ fun () ->
                    let labels, aligned = shared_alignment stats lvs in
                    let pos = List.mapi (fun i l -> (l, i)) labels in
                    let by_label =
                      List.map2 (fun lv mask -> (lv.lv_label, mask)) lvs masks
                    in
                    Array.to_seq aligned
                    |> Seq.filter_map (fun (tid, slots) ->
                           if drop_tid tid then None
                           else
                             let slot_in label =
                               List.nth slots (List.assoc label pos)
                             in
                             if
                               List.for_all
                                 (fun (label, mask) -> mask.(slot_in label))
                                 by_label
                             then Some (tid, List.map (fun lv -> slot_in lv.lv_label) lvs)
                             else None)
                    |> Array.of_seq
                  in
                  sort_merge_decrypt ~cache client conn ~scheme_of q plan lvs compiled
                    matched
                | `Oram ->
                  let next_seed = ref 0x09a7 in
                  run_anchor_fetch ~drop_tid ~cache client conn ~scheme_of q plan lvs
                    compiled masks
                    ~make_fetcher:(fun ~wanted lv ->
                      ignore wanted;
                      let seed = !next_seed in
                      incr next_seed;
                      oram_fetcher ~cache client conn ~scheme_of q plan oram_touches
                        ~seed lv)
                | `Binning bin_size ->
                  run_anchor_fetch ~drop_tid ~cache client conn ~scheme_of q plan lvs
                    compiled masks
                    ~make_fetcher:(binning_fetcher ~cache client conn ~scheme_of q plan
                                     bin_size bin_retrieved))
            in
            let wire_requests, wire_bytes_up, wire_bytes_down =
              add3 mint_wire (wire_delta wr0 (wire_at ()))
            in
            Wiretrace.mark "query.end";
            Ok
              ( result,
                { plan;
                  decision;
                  mode;
                  scanned_cells = scanned;
                  index_probes;
                  comparisons = stats.Oblivious_join.comparisons;
                  rows_processed = stats.Oblivious_join.rows_processed;
                  oram_bucket_touches = !oram_touches;
                  binning_retrieved = !bin_retrieved;
                  result_rows = Relation.cardinality result;
                  wire_requests;
                  wire_bytes_up;
                  wire_bytes_down;
                  estimated_seconds =
                    Cost_model.trace_seconds params
                      ~comparisons:stats.Oblivious_join.comparisons
                      ~rows_processed:stats.Oblivious_join.rows_processed
                      ~scanned_cells:scanned ~oram_bucket_touches:!oram_touches
                      ~retrieved_rows:!bin_retrieved } ))
        prepped
    in
    (* Charge the batch-shared traffic to the first executed query, then
       publish each trace — the per-query counter contributions sum
       exactly to the batch's global deltas. *)
    let shared_left = ref (Some shared_wire) in
    let published =
      List.map
        (function
        | Error e -> Error e
        | Ok (result, trace) ->
          let trace =
            match !shared_left with
            | None -> trace
            | Some (sreq, sup, sdown) ->
              shared_left := None;
              { trace with
                wire_requests = trace.wire_requests + sreq;
                wire_bytes_up = trace.wire_bytes_up + sup;
                wire_bytes_down = trace.wire_bytes_down + sdown }
          in
          Metrics.incr m_queries;
          Metrics.add m_scanned trace.scanned_cells;
          Metrics.add m_probes trace.index_probes;
          Metrics.add m_comparisons trace.comparisons;
          Metrics.add m_rows_processed trace.rows_processed;
          Metrics.add m_result_rows trace.result_rows;
          Metrics.observe h_result_rows trace.result_rows;
          Ok (result, trace))
        outcomes
    in
    Wiretrace.mark "batch.end";
    published
  end

let pp_trace fmt t =
  Format.fprintf fmt
    "@[<v>plan: %a (%s; %s planner, cache %s)@,\
     scanned cells: %d (+%d via index); comparisons: %d; \
     rows through networks: %d@,oram bucket touches: %d; binning retrieved: %d@,\
     wire: %d requests, %d B up, %d B down@,\
     result rows: %d; est. %.4f s@]"
    Planner.pp t.plan (mode_name t.mode) t.decision.Planner.d_selector
    (match t.decision.Planner.d_cache with `Hit -> "hit" | `Miss -> "miss")
    t.scanned_cells t.index_probes t.comparisons
    t.rows_processed t.oram_bucket_touches t.binning_retrieved t.wire_requests
    t.wire_bytes_up t.wire_bytes_down t.result_rows t.estimated_seconds

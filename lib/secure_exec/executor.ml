open Snf_relational
module Metrics = Snf_obs.Metrics
module Span = Snf_obs.Span

(* Query-level totals, published once per [run] from the same values that
   land in [trace] — the Snf_obs totals therefore match the trace exactly. *)
let m_queries = Metrics.counter "exec.query.count"
let m_scanned = Metrics.counter "exec.query.scanned_cells"
let m_probes = Metrics.counter "exec.query.index_probes"
let m_comparisons = Metrics.counter "exec.query.comparisons"
let m_rows_processed = Metrics.counter "exec.query.rows_processed"
let m_result_rows = Metrics.counter "exec.query.result_rows"
let m_tokens = Metrics.counter "exec.query.tokens_minted"
let h_result_rows = Metrics.histogram "exec.query.result_rows_hist"

type mode = [ `Sort_merge | `Oram | `Binning of int ]

let mode_name = function
  | `Sort_merge -> "sort-merge"
  | `Oram -> "oram"
  | `Binning b -> Printf.sprintf "binning(%d)" b

type trace = {
  plan : Planner.plan;
  mode : mode;
  scanned_cells : int;
  index_probes : int;   (* predicate evaluations served by an equality index *)
  comparisons : int;
  rows_processed : int;
  oram_bucket_touches : int;
  binning_retrieved : int;
  result_rows : int;
  estimated_seconds : float;
}

let pred_holds (p : Query.pred) v =
  match p with
  | Query.Point (_, want) -> Value.equal v want
  | Query.Range (_, lo, hi) -> Value.compare lo v <= 0 && Value.compare v hi <= 0

(* A predicate after the minting phase: either an equality index already
   served its slot list (§V-D "leakage as indexing"), or the server must
   scan the column with a minted ciphertext test. Indexed predicates keep
   the source predicate so the client can re-verify fetched rows against
   it — the index is server state and may be stale. *)
type compiled_pred =
  | Indexed of Query.pred * int list
  | Scan of Enc_relation.enc_column * (Enc_relation.cell -> bool)

(* Client role: mint the token for one predicate, then close it over the
   ciphertext comparison the server will run. Index lookups also happen
   here, sequentially — [Enc_relation.eq_index] lazily builds and memoizes
   indexes (a cache write), which must not race with the concurrent cache
   reads of parallel filters. *)
let compile_pred ~use_index client enc (leaf : Enc_relation.enc_leaf) index_probes
    (p : Query.pred) =
  let attr = Query.pred_attr p in
  let col = Enc_relation.column leaf attr in
  let indexed =
    if not use_index then None
    else
      match p with
      | Query.Point (_, v) -> (
        match
          ( Enc_relation.eq_index enc ~leaf:leaf.Enc_relation.label ~attr,
            Enc_relation.eq_token client ~leaf:leaf.Enc_relation.label ~attr
              ~scheme:col.Enc_relation.scheme v )
        with
        | Some idx, Some tok -> (
          match Enc_relation.index_key_of_token tok with
          | Some key ->
            let slots = Option.value (Hashtbl.find_opt idx key) ~default:[] in
            List.iter
              (fun s ->
                if s < 0 || s >= leaf.Enc_relation.row_count then
                  Integrity.fail ~leaf:leaf.Enc_relation.label ~attr ~where:"index"
                    (Printf.sprintf "equality-index slot %d outside [0, %d)" s
                       leaf.Enc_relation.row_count))
              slots;
            index_probes := !index_probes + 1 + List.length slots;
            Some slots
          | None -> None)
        | _ -> None)
      | _ -> None
  in
  match indexed with
  | Some slots -> Indexed (p, slots)
  | None ->
    Metrics.incr m_tokens;
    let test =
      match p with
      | Query.Point (_, v) -> (
        match
          Enc_relation.eq_token client ~leaf:leaf.Enc_relation.label ~attr
            ~scheme:col.Enc_relation.scheme v
        with
        | Some tok -> fun cell -> Enc_relation.cell_matches_eq tok cell
        | None -> invalid_arg "Executor: planner homed an unsupported point predicate")
      | Query.Range (_, lo, hi) -> (
        match
          Enc_relation.range_token client ~leaf:leaf.Enc_relation.label ~attr
            ~scheme:col.Enc_relation.scheme ~lo ~hi
        with
        | Some tok -> fun cell -> Enc_relation.cell_in_range tok cell
        | None -> invalid_arg "Executor: planner homed an unsupported range predicate")
    in
    Scan (col, test)

(* Server role: evaluate the compiled predicates homed at this leaf over
   its ciphertext columns, returning the selection mask and the number of
   cells scanned. Pure — all key-dependent work happened in [compile_pred]
   — precisely so this function can run on any domain. *)
let server_filter (leaf : Enc_relation.enc_leaf) compiled =
  let mask = Array.make leaf.Enc_relation.row_count true in
  let scanned = ref 0 in
  let apply_slots slots =
    let keep = Array.make leaf.Enc_relation.row_count false in
    List.iter (fun s -> keep.(s) <- true) slots;
    Array.iteri (fun i m -> if m && not keep.(i) then mask.(i) <- false) mask
  in
  List.iter
    (function
      | Indexed (_, slots) -> apply_slots slots
      | Scan (col, test) ->
        scanned := !scanned + leaf.Enc_relation.row_count;
        Array.iteri
          (fun i cell -> if mask.(i) && not (test cell) then mask.(i) <- false)
          col.Enc_relation.cells)
    compiled;
  (mask, !scanned)

let decrypt_at client (leaf : Enc_relation.enc_leaf) attr slot =
  let col = Enc_relation.column leaf attr in
  Enc_relation.decrypt_cell client ~leaf:leaf.Enc_relation.label ~attr
    ~scheme:col.Enc_relation.scheme
    col.Enc_relation.cells.(slot)

(* Client-side re-verification of index-served predicates: the equality
   index is mutable server state, so a row it returned must still satisfy
   the predicate once decrypted — a stale entry surfaces as detected
   corruption, never as a wrong answer. Scanned predicates need no check:
   their ciphertext test ran on the authenticated cells themselves. *)
let verify_indexed client (leaf : Enc_relation.enc_leaf) compiled slot =
  List.iter
    (function
      | Indexed (p, _) ->
        let attr = Query.pred_attr p in
        if not (pred_holds p (decrypt_at client leaf attr slot)) then
          Integrity.fail ~leaf:leaf.Enc_relation.label ~attr ~where:"index"
            "stale equality-index entry: fetched row does not satisfy its predicate"
      | Scan _ -> ())
    compiled

let build_result (q : Query.t) rows =
  let witness_ty i =
    List.fold_left
      (fun acc row -> match acc with Some _ -> acc | None -> Value.type_of (List.nth row i))
      None rows
    |> Option.value ~default:Value.TText
  in
  let schema =
    Schema.of_attributes
      (List.mapi (fun i a -> Attribute.make a (witness_ty i)) q.Query.select)
  in
  Relation.create schema (List.map Array.of_list rows)

let preds_at (plan : Planner.plan) label =
  List.filter_map
    (fun (p, home) -> if home = label then Some p else None)
    plan.Planner.pred_home

let proj_leaf (plan : Planner.plan) attr =
  match List.assoc_opt attr plan.Planner.proj_home with
  | Some l -> l
  | None -> invalid_arg "Executor: projection attribute without a home leaf"

(* The anchor drives the per-row fetches of the ORAM/binning paths, so the
   best anchor is the most selective one: fewest mask survivors, ties
   broken toward more homed predicates, then plan order. *)
let anchor_label (plan : Planner.plan) leaves masks =
  let popcount m = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m in
  let scored =
    List.map2
      (fun (l : Enc_relation.enc_leaf) mask ->
        ( popcount mask,
          -List.length (preds_at plan l.Enc_relation.label),
          l.Enc_relation.label ))
      leaves masks
  in
  match List.stable_sort compare scored with
  | (_, _, label) :: _ -> label
  | [] -> invalid_arg "Executor: empty plan"

let needed_attrs_of_leaf (q : Query.t) plan label =
  let projs = List.filter (fun a -> proj_leaf plan a = label) q.Query.select in
  let preds = List.map Query.pred_attr (preds_at plan label) in
  List.sort_uniq String.compare (projs @ preds)

(* Assemble the output rows given, per output tid, a function giving the
   decrypted value of (leaf label, attr). *)
let project_rows (q : Query.t) plan matches value_of =
  List.map
    (fun m -> List.map (fun attr -> value_of m (proj_leaf plan attr) attr) q.Query.select)
    matches

(* --- single leaf -------------------------------------------------------- *)

let run_single ~drop_tid client q plan (leaf : Enc_relation.enc_leaf) compiled mask =
  let matches =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "single") ] @@ fun () ->
    let n = leaf.Enc_relation.row_count in
    let slots = ref [] in
    Array.iteri
      (fun i keep ->
        if keep
           && not
                (drop_tid
                   (Enc_relation.tid_at client ~leaf:leaf.Enc_relation.label ~rows:n i))
        then slots := i :: !slots)
      mask;
    List.rev !slots
  in
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  List.iter (verify_indexed client leaf compiled) matches;
  let rows =
    project_rows q plan matches (fun slot _label attr -> decrypt_at client leaf attr slot)
  in
  build_result q rows

(* --- sort-merge reconstruction ------------------------------------------ *)

let run_sort_merge ~drop_tid ?tids_for client q plan leaves compiled masks stats =
  let matched =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "sort_merge") ] @@ fun () ->
    Oblivious_join.join_many ?tids_for ~masks:(List.combine leaves masks) stats client
    |> Array.to_seq
    |> Seq.filter (fun (tid, _) -> not (drop_tid tid))
    |> Array.of_seq
  in
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  Array.iter
    (fun (_, slots) ->
      List.iteri
        (fun i leaf -> verify_indexed client leaf (List.nth compiled i) (List.nth slots i))
        leaves)
    matched;
  let label_index =
    List.mapi (fun i (l : Enc_relation.enc_leaf) -> (l.Enc_relation.label, i)) leaves
  in
  let leaf_arr = Array.of_list leaves in
  let rows =
    project_rows q plan (Array.to_list matched) (fun (_, slots) label attr ->
        let i = List.assoc label label_index in
        decrypt_at client leaf_arr.(i) attr (List.nth slots i))
  in
  build_result q rows

(* --- anchor + fetch reconstructions (ORAM / binning) --------------------- *)

(* Partner-leaf access plumbing shared by the ORAM and binning paths: for a
   tid, retrieve the decrypted values of the attrs this query needs from
   that leaf. *)
type fetcher = {
  fetch : int -> (string * Value.t) list;  (* tid -> (attr, value) *)
  leaf_label : string;
}

let oram_fetcher client q plan oram_touches prng (leaf : Enc_relation.enc_leaf) =
  let label = leaf.Enc_relation.label in
  let needed = needed_attrs_of_leaf q plan label in
  let n = leaf.Enc_relation.row_count in
  let payload slot =
    Marshal.to_string (List.map (fun a -> (a, decrypt_at client leaf a slot)) needed) []
  in
  let block_size =
    let m = ref 1 in
    for slot = 0 to n - 1 do
      m := max !m (String.length (payload slot))
    done;
    !m
  in
  let pad s = s ^ String.make (block_size - String.length s) '\x00' in
  let oram = Path_oram.create ~num_blocks:(max n 1) ~block_size prng in
  for slot = 0 to n - 1 do
    Path_oram.write oram slot (pad (payload slot))
  done;
  let setup_touches = Path_oram.bucket_touches oram in
  let counted = ref setup_touches in
  { leaf_label = label;
    fetch =
      (fun tid ->
        let slot = Enc_relation.row_position client ~leaf:label ~rows:n tid in
        let data = Path_oram.read oram slot in
        oram_touches := !oram_touches + (Path_oram.bucket_touches oram - !counted);
        counted := Path_oram.bucket_touches oram;
        (Marshal.from_string data 0 : (string * Value.t) list)) }

let binning_fetcher client q plan bin_size bin_retrieved ~wanted
    (leaf : Enc_relation.enc_leaf) =
  let label = leaf.Enc_relation.label in
  let needed = needed_attrs_of_leaf q plan label in
  let n = leaf.Enc_relation.row_count in
  (* PANDA-style: one schedule of fixed-size keyed bins covering every
     wanted slot; the server ships whole bins, so it learns only which bins
     were touched. The enclave keeps the wanted rows. *)
  let wanted_slots =
    List.map (fun tid -> Enc_relation.row_position client ~leaf:label ~rows:n tid) wanted
  in
  let schedule =
    if n = 0 || wanted_slots = [] then None
    else
      Some
        (Binning.schedule
           ~key:(Enc_relation.binning_key client ~leaf:label)
           ~universe:n ~bin_size:(min bin_size n) wanted_slots)
  in
  (match schedule with
   | Some s -> bin_retrieved := !bin_retrieved + s.Binning.retrieved
   | None -> ());
  { leaf_label = label;
    fetch =
      (fun tid ->
        let slot = Enc_relation.row_position client ~leaf:label ~rows:n tid in
        (match schedule with
         | Some s ->
           (* the slot must be inside a requested bin *)
           assert (List.exists (List.mem slot) s.Binning.bins)
         | None -> ());
        List.map (fun a -> (a, decrypt_at client leaf a slot)) needed) }

let run_anchor_fetch ~drop_tid client q plan leaves compiled masks ~make_fetcher =
  let anchor = anchor_label plan leaves masks in
  let anchor_leaf, anchor_mask =
    List.combine leaves masks
    |> List.find (fun ((l : Enc_relation.enc_leaf), _) -> l.Enc_relation.label = anchor)
  in
  let anchor_compiled =
    List.combine leaves compiled
    |> List.find (fun ((l : Enc_relation.enc_leaf), _) -> l.Enc_relation.label = anchor)
    |> snd
  in
  let n = anchor_leaf.Enc_relation.row_count in
  (* Reconstruction: anchor selection, partner fetches, and the enclave's
     post-filter — everything that decides which tids survive. *)
  let matches =
    Span.with_ ~name:"query.reconstruct" ~attrs:[ ("path", "anchor_fetch") ]
    @@ fun () ->
    let partners =
      List.filter
        (fun (l : Enc_relation.enc_leaf) -> l.Enc_relation.label <> anchor)
        leaves
    in
    let selected_tids = ref [] in
    Array.iteri
      (fun slot keep ->
        if keep then begin
          let tid = Enc_relation.tid_at client ~leaf:anchor ~rows:n slot in
          if not (drop_tid tid) then selected_tids := tid :: !selected_tids
        end)
      anchor_mask;
    let fetchers = List.map (make_fetcher ~wanted:(List.rev !selected_tids)) partners in
    List.filter_map
      (fun tid ->
        let partner_values =
          List.map (fun f -> (f.leaf_label, f.fetch tid)) fetchers
        in
        (* Post-filter: predicates homed at partner leaves. *)
        let passes =
          List.for_all
            (fun (label, values) ->
              List.for_all
                (fun p ->
                  match List.assoc_opt (Query.pred_attr p) values with
                  | Some v -> pred_holds p v
                  | None -> invalid_arg "Executor: fetched row misses predicate attr")
                (preds_at plan label))
            partner_values
        in
        if passes then Some (tid, partner_values) else None)
      (List.rev !selected_tids)
  in
  Span.with_ ~name:"query.client_decrypt" @@ fun () ->
  List.iter
    (fun (tid, _) ->
      verify_indexed client anchor_leaf anchor_compiled
        (Enc_relation.row_position client ~leaf:anchor ~rows:n tid))
    matches;
  let rows =
    List.map
      (fun (tid, partner_values) ->
        let value_of label attr =
          if label = anchor then
            let slot = Enc_relation.row_position client ~leaf:anchor ~rows:n tid in
            decrypt_at client anchor_leaf attr slot
          else List.assoc attr (List.assoc label partner_values)
        in
        List.map (fun attr -> value_of (proj_leaf plan attr) attr) q.Query.select)
      matches
  in
  build_result q rows

(* ------------------------------------------------------------------------ *)

let run ?(mode = `Sort_merge) ?(params = Cost_model.default) ?selector
    ?(use_index = false) ?(use_tid_cache = true) ?(drop_tid = fun _ -> false) client enc
    rep q =
  match Planner.plan ?selector rep q with
  | Error e -> Error e
  | Ok plan ->
    Span.with_ ~name:"query"
      ~attrs:
        [ ("mode", mode_name mode);
          ("relation", enc.Enc_relation.relation_name);
          ("leaves", string_of_int (List.length plan.Planner.leaves)) ]
    @@ fun () ->
    let scanned = ref 0 in
    let index_probes = ref 0 in
    let stats = Oblivious_join.fresh_stats () in
    let oram_touches = ref 0 in
    let bin_retrieved = ref 0 in
    (* Storage-integrity gate: the planned leaves must exist and be
       structurally sound (dropped or truncated leaves are corruption,
       not planner errors — the plan was built from the representation). *)
    Enc_relation.check_shape enc;
    let leaves =
      List.map
        (fun label ->
          match Enc_relation.find_leaf enc label with
          | l -> l
          | exception Not_found ->
            Integrity.fail ~leaf:label ~where:"store"
              "planned leaf missing from the encrypted store")
        plan.Planner.leaves
    in
    (* Phase 1 (sequential): mint tokens and serve what the equality
       indexes can — this is where lazy index builds and cache-hit
       accounting happen. Phase 2 (parallel): the per-leaf ciphertext
       scans are pure, so they fan out one leaf per domain. *)
    let compiled =
      Span.with_ ~name:"query.mint_tokens" @@ fun () ->
      List.map
        (fun (l : Enc_relation.enc_leaf) ->
          List.map
            (fun p -> compile_pred ~use_index client enc l index_probes p)
            (preds_at plan l.Enc_relation.label))
        leaves
    in
    let filtered =
      Span.with_ ~name:"query.server_filter" @@ fun () ->
      Parallel.map_list
        ~domains:(Parallel.domain_count ())
        (fun (l, preds) ->
          Span.with_ ~name:"query.filter_leaf"
            ~attrs:[ ("leaf", l.Enc_relation.label) ]
          @@ fun () -> server_filter l preds)
        (List.combine leaves compiled)
    in
    let masks = List.map fst filtered in
    List.iter (fun (_, s) -> scanned := !scanned + s) filtered;
    let result =
      match (leaves, masks) with
      | [ leaf ], [ mask ] ->
        run_single ~drop_tid client q plan leaf (List.hd compiled) mask
      | _ -> (
        match mode with
        | `Sort_merge ->
          (* The join's tid decrypts are memoized per (leaf, key epoch)
             when the cache is on; the cached path still authenticates on
             every miss, and corrupted leaf copies always miss (see
             [Enc_relation.decrypt_tids_cached]). *)
          let tids_for =
            if use_tid_cache then Some (Enc_relation.decrypt_tids_cached client)
            else None
          in
          run_sort_merge ~drop_tid ?tids_for client q plan leaves compiled masks stats
        | `Oram ->
          let prng = Snf_crypto.Prng.create 0x09a7 in
          run_anchor_fetch ~drop_tid client q plan leaves compiled masks
            ~make_fetcher:(fun ~wanted leaf ->
              ignore wanted;
              oram_fetcher client q plan oram_touches prng leaf)
        | `Binning bin_size ->
          run_anchor_fetch ~drop_tid client q plan leaves compiled masks
            ~make_fetcher:(binning_fetcher client q plan bin_size bin_retrieved))
    in
    let trace =
      { plan;
        mode;
        scanned_cells = !scanned;
        index_probes = !index_probes;
        comparisons = stats.Oblivious_join.comparisons;
        rows_processed = stats.Oblivious_join.rows_processed;
        oram_bucket_touches = !oram_touches;
        binning_retrieved = !bin_retrieved;
        result_rows = Relation.cardinality result;
        estimated_seconds =
          Cost_model.trace_seconds params ~comparisons:stats.Oblivious_join.comparisons
            ~rows_processed:stats.Oblivious_join.rows_processed ~scanned_cells:!scanned
            ~oram_bucket_touches:!oram_touches ~retrieved_rows:!bin_retrieved }
    in
    Metrics.incr m_queries;
    Metrics.add m_scanned trace.scanned_cells;
    Metrics.add m_probes trace.index_probes;
    Metrics.add m_comparisons trace.comparisons;
    Metrics.add m_rows_processed trace.rows_processed;
    Metrics.add m_result_rows trace.result_rows;
    Metrics.observe h_result_rows trace.result_rows;
    Ok (result, trace)

let pp_trace fmt t =
  Format.fprintf fmt
    "@[<v>plan: %a (%s)@,scanned cells: %d (+%d via index); comparisons: %d; \
     rows through networks: %d@,oram bucket touches: %d; binning retrieved: %d@,\
     result rows: %d; est. %.4f s@]"
    Planner.pp t.plan (mode_name t.mode) t.scanned_cells t.index_probes t.comparisons t.rows_processed t.oram_bucket_touches
    t.binning_retrieved t.result_rows t.estimated_seconds

(** Secure query execution over an outsourced SNF representation
    (Algorithm 1, lines 5–12).

    Roles, separated by module boundaries rather than processes:
    the {e server} evaluates predicate tokens on ciphertext columns and
    serves rows/bins; the {e enclave} (holding the client's keys, like the
    SGX deployment of §III-B) performs tid reconstruction obliviously; the
    {e client} mints tokens and decrypts the final answer.

    Three reconstruction mechanisms:
    - [`Sort_merge] — bitonic oblivious sort-merge join over full leaves
      (selection masks applied inside the enclave, after the network);
    - [`Oram] — anchor-leaf selection, partner rows fetched through a
      per-leaf Path ORAM;
    - [`Binning of bin_size] — partner rows fetched by fixed-size keyed
      bins (PANDA-style), decoys included.

    All three return the same answer (tested against
    [Query.reference_answer]); they differ in the trace the server
    observes and the counters charged to the cost model. *)

open Snf_relational

type mode = [ `Sort_merge | `Oram | `Binning of int ]

type trace = {
  plan : Planner.plan;
  decision : Planner.decision;  (** the planner's full verdict: estimate,
                                    rejected candidates, truncation notes,
                                    cache hit/miss — EXPLAIN's payload *)
  mode : mode;
  scanned_cells : int;          (** server predicate evaluations (scans) *)
  index_probes : int;           (** predicate work served by equality indexes *)
  comparisons : int;            (** enclave compare-exchanges *)
  rows_processed : int;         (** rows through oblivious networks *)
  oram_bucket_touches : int;
  binning_retrieved : int;      (** rows fetched incl. decoys *)
  result_rows : int;
  wire_requests : int;          (** client→server messages this query *)
  wire_bytes_up : int;          (** serialized request bytes this query *)
  wire_bytes_down : int;        (** serialized response bytes this query *)
  estimated_seconds : float;    (** via [Cost_model.trace_seconds] *)
}

val run_conn :
  ?mode:mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  Enc_relation.client ->
  Server_api.conn ->
  Snf_core.Partition.t ->
  Query.t ->
  (Relation.t * trace, string) result
(** Execute against a server connection. This is the split-trust entry
    point: the client half (this function) holds the keys, mints tokens,
    and decrypts; everything the server does is reachable only through
    the serialized [Wire] messages carried by the connection. Column
    schemes are resolved from the representation, never from server
    metadata. The trace's [wire_*] fields are the connection's traffic
    delta across the query (Describe through the last fetch).

    [planner] (shared by all three entry points; default
    [Planner.greedy]) chooses how queries are planned: the greedy cover
    heuristic, a statistics-driven cost-based handle
    ([System.cost_planner] / [Cost_model.planner]), or the legacy
    exhaustive [Planner.optimal]. The resulting {!Planner.decision} —
    estimate, rejected candidates, truncation notes, cache hit/miss — is
    carried in the trace's [decision] field.

    On a persistent connection the sort-merge tid cache keeps working
    across queries: [Server_api.fetch_tids] returns a physically stable
    array while the server's tid bytes are unchanged.

    [use_mapping_cache] (default false here, true in {!run_batch})
    additionally memoizes token minting and cell decrypts in the client's
    crypto-free mapping cache ([Enc_relation]): answers are identical
    either way — entries are keyed by key epoch and input bytes, so
    re-encryption and tampered cells always miss. *)

val run :
  ?mode:mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  Enc_relation.client ->
  Enc_relation.t ->
  Snf_core.Partition.t ->
  Query.t ->
  (Relation.t * trace, string) result
(** Default mode [`Sort_merge]. [use_tid_cache] (default true) memoizes
    the sort-merge join's per-leaf tid decrypts through
    [Enc_relation.decrypt_tids_cached]; answers are identical either way —
    the cache is keyed by (leaf, key epoch) and validated by physical
    identity of the ciphertext column, so re-encryption and corrupted
    copies always miss. [drop_tid] is the enclave-side tombstone
    filter: rows whose tid it selects are removed from every answer (how
    deletions work without re-encryption — see [Dynamic.delete]). With
    [use_index] (default false), point
    predicates over canonical-ciphertext columns are served from the
    server's equality index — §V-D "leakage as indexing"; index
    construction reveals nothing beyond the column's permissible equality
    leakage. The answer's columns follow the query's projection order; row
    order is unspecified.

    Storage corruption — dropped or truncated leaves, tampered
    ciphertexts, stale index entries — raises the typed
    [Integrity.Corruption] rather than returning a wrong answer: leaf
    shapes are checked up front, index-served slots are bounds-checked and
    their rows re-verified against the predicate after decryption, and
    every decrypt authenticates (see [Enc_relation]). Use
    [System.query_checked] for a result-typed wrapper.

    Equivalent to {!run_conn} over a transient in-process
    ([Backend_mem]) connection adopting [enc]; the wire counters still
    tick — the messages are real, the transport is a function call. *)

val run_batch :
  ?mode:mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  Enc_relation.client ->
  Server_api.conn ->
  Snf_core.Partition.t ->
  Query.t list ->
  (Relation.t * trace, string) result list
(** Execute K queries as one batch, positionally: answers (and per-query
    planner errors) come back in request order, each with a full
    {!trace}. Answers are bag-identical to K {!run_conn} calls.

    Amortization, in three layers:
    {ul
    {- {e one wire round trip} for all selection work: every executable
       query's per-leaf filters ship in a single [Wire.Q_batch] message
       and the server walks each touched leaf once for the whole batch;}
    {- {e one shared oblivious pass} per distinct leaf set under
       [`Sort_merge]: the bitonic alignment of the leaves is built once
       with all-true masks and every query's selection masks are applied
       to it inside the enclave — K queries pay one sort, not K;}
    {- {e crypto-free mappings} ([use_mapping_cache], default true here):
       token minting and cell decrypts are memoized per key epoch, so
       repeated predicates and overlapping result windows — within a
       batch and across batches — skip Paillier/OPE/ORE work entirely.}}

    Trace accounting stays exact: each query's trace carries its own
    minting and reconstruction traffic, the batch-shared traffic
    (Describe/Check_shape and the Q_batch round trip) is charged to the
    first executed query, and the shared alignment's comparisons are
    charged to the query that triggered its construction (reusers report
    zero). Per-query [exec.query.*] counters are published from these
    trace values, so summed traces reconcile exactly with the global
    counter deltas — bit-identical for any SNF_DOMAINS, since all
    client-side batch work runs on the calling domain. Counters
    [exec.batch.{count,queries,shared_joins,join_reuses}] describe the
    batch itself.

    [`Oram] / [`Binning] reconstruction runs per query (those paths are
    anchored on per-query selections); they still share the batched
    filter round trip and the mapping cache.

    @raise Integrity.Corruption / [Invalid_argument] as {!run_conn};
    a failure aborts the whole batch. *)

val pp_trace : Format.formatter -> trace -> unit

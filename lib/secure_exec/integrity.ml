type corruption = {
  where : string;
  leaf : string option;
  attr : string option;
  detail : string;
}

exception Corruption of corruption

let fail ?leaf ?attr ~where detail = raise (Corruption { where; leaf; attr; detail })

let guard f = match f () with v -> Ok v | exception Corruption c -> Error c

let to_string c =
  let coord =
    match (c.leaf, c.attr) with
    | Some l, Some a -> Printf.sprintf " at %s.%s" l a
    | Some l, None -> Printf.sprintf " at %s" l
    | None, Some a -> Printf.sprintf " at column %s" a
    | None, None -> ""
  in
  Printf.sprintf "corruption detected in %s%s: %s" c.where coord c.detail

let pp fmt c = Format.pp_print_string fmt (to_string c)

let () =
  Printexc.register_printer (function
    | Corruption c -> Some (to_string c)
    | _ -> None)

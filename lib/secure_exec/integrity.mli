(** Typed corruption detection for the decrypt/reconstruct path.

    The SNF security argument assumes the server is semi-honest, but the
    {e storage} may still rot: bit-flips, truncated leaves, stale index
    entries, mismatched key material. The conformance contract
    (DESIGN.md §Testing & Conformance) is that such corruption must
    surface as a {e typed} error — never as a silently wrong answer.

    Every detection site in [Enc_relation] and [Executor] raises
    {!Corruption} rather than a bare [Invalid_argument], so callers (and
    the [Snf_check] fault-injection harness) can distinguish "the store is
    damaged" from "the caller misused the API". [System.query_checked]
    converts the exception back into a result. *)

type corruption = {
  where : string;
      (** detection site: ["tid"], ["cell"], ["leaf"], ["index"] or
          ["store"] *)
  leaf : string option;
  attr : string option;
  detail : string;
}

exception Corruption of corruption

val fail : ?leaf:string -> ?attr:string -> where:string -> string -> 'a
(** Raise {!Corruption} with the given coordinates. *)

val guard : (unit -> 'a) -> ('a, corruption) result
(** Run the thunk, catching {!Corruption} (and nothing else). *)

val to_string : corruption -> string

val pp : Format.formatter -> corruption -> unit

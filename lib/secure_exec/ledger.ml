open Snf_relational

type t = {
  owner : System.owner;
  (* (attr, canonical token fingerprint) -> count *)
  tokens : (string * string, int) Hashtbl.t;
  co_access : (string * string, int) Hashtbl.t;
  mutable volumes : int list; (* newest first *)
  mutable queries : int;
  mutable reconstruction_rows : int;
}

let create owner =
  { owner;
    tokens = Hashtbl.create 64;
    co_access = Hashtbl.create 64;
    volumes = [];
    queries = 0;
    reconstruction_rows = 0 }

let owner t = t.owner

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

(* The server-visible fingerprint of a predicate: the attribute plus the
   constant's encoding. For DET/OPE the token is deterministic, so equal
   constants produce equal fingerprints — exactly what the server sees. *)
let record_predicates t (q : Query.t) =
  List.iter
    (fun (p : Query.pred) ->
      let fingerprint =
        match p with
        | Query.Point (a, v) -> (a, "=" ^ Value.encode v)
        | Query.Range (a, lo, hi) -> (a, "[" ^ Value.encode lo ^ ";" ^ Value.encode hi)
      in
      bump t.tokens fingerprint)
    q.Query.where

let record_plan t (trace : Executor.trace) =
  let leaves = List.sort String.compare trace.Executor.plan.Planner.leaves in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter (fun b -> bump t.co_access (a, b)) rest;
      pairs rest
  in
  pairs leaves

let query ?mode ?use_index t q =
  match System.query ?mode ?use_index t.owner q with
  | Error _ as e -> e
  | Ok (ans, trace) ->
    t.queries <- t.queries + 1;
    record_predicates t q;
    record_plan t trace;
    t.volumes <- Relation.cardinality ans :: t.volumes;
    t.reconstruction_rows <-
      t.reconstruction_rows + trace.Executor.rows_processed
      + trace.Executor.binning_retrieved;
    Ok (ans, trace)

type attr_report = {
  attr : string;
  tokens_issued : int;
  distinct_tokens : int;
}

type report = {
  queries : int;
  attrs : attr_report list;
  co_access : ((string * string) * int) list;
  result_volumes : int list;
  total_reconstruction_rows : int;
  index_hits : int;
  index_misses : int;
}

let report t =
  let per_attr = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (attr, _) count ->
      let issued, distinct =
        Option.value (Hashtbl.find_opt per_attr attr) ~default:(0, 0)
      in
      Hashtbl.replace per_attr attr (issued + count, distinct + 1))
    t.tokens;
  let attrs =
    Hashtbl.fold
      (fun attr (tokens_issued, distinct_tokens) acc ->
        { attr; tokens_issued; distinct_tokens } :: acc)
      per_attr []
    |> List.sort (fun a b ->
           match Int.compare b.tokens_issued a.tokens_issued with
           | 0 -> String.compare a.attr b.attr
           | c -> c)
  in
  let stats = t.owner.System.enc.Enc_relation.index_stats in
  { queries = t.queries;
    attrs;
    co_access =
      Hashtbl.fold (fun pair n acc -> (pair, n) :: acc) t.co_access []
      |> List.sort (fun ((_, _), n1) ((_, _), n2) -> Int.compare n2 n1);
    result_volumes = List.rev t.volumes;
    total_reconstruction_rows = t.reconstruction_rows;
    index_hits = stats.Enc_relation.hits;
    index_misses = stats.Enc_relation.misses }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>session: %d queries, %d rows through reconstruction@,"
    r.queries r.total_reconstruction_rows;
  List.iter
    (fun a ->
      Format.fprintf fmt "  %s: %d tokens (%d distinct constants)@," a.attr
        a.tokens_issued a.distinct_tokens)
    r.attrs;
  List.iter
    (fun ((l1, l2), n) -> Format.fprintf fmt "  co-accessed %s + %s: %d times@," l1 l2 n)
    r.co_access;
  if r.index_hits + r.index_misses > 0 then
    Format.fprintf fmt "  eq-index cache: %d hits, %d builds@," r.index_hits
      r.index_misses;
  Format.fprintf fmt "@]"

open Snf_relational
module Metrics = Snf_obs.Metrics
module Json = Snf_obs.Json

(* Same process-wide counters [Enc_relation.eq_index] bumps — registration
   is idempotent by name, so there is exactly one accounting source shared
   with the index ablation and the executor. *)
let m_idx_hits = Metrics.counter "exec.eq_index.hits"
let m_idx_builds = Metrics.counter "exec.eq_index.builds"
let m_tid_hits = Metrics.counter "exec.join.tid_cache.hits"
let m_tid_misses = Metrics.counter "exec.join.tid_cache.misses"
let m_map_hits = Metrics.counter "exec.mapping_cache.hits"
let m_map_misses = Metrics.counter "exec.mapping_cache.misses"
let m_batches = Metrics.counter "exec.batch.count"
let m_batch_queries = Metrics.counter "exec.batch.queries"
let m_shared_joins = Metrics.counter "exec.batch.shared_joins"
let m_join_reuses = Metrics.counter "exec.batch.join_reuses"

type t = {
  owner : System.owner;
  (* (attr, canonical token fingerprint) -> count *)
  tokens : (string * string, int) Hashtbl.t;
  co_access : (string * string, int) Hashtbl.t;
  mutable volumes : int list; (* newest first *)
  mutable queries : int;
  mutable reconstruction_rows : int;
  mutable wire_requests : int;
  mutable wire_bytes_up : int;
  mutable wire_bytes_down : int;
  (* Process counters are cumulative; the ledger reports deltas from its
     creation. *)
  idx_hits0 : int;
  idx_builds0 : int;
  tid_hits0 : int;
  tid_misses0 : int;
  map_hits0 : int;
  map_misses0 : int;
  batches0 : int;
  batch_queries0 : int;
  shared_joins0 : int;
  join_reuses0 : int;
  mutable query_metrics : (string * int) list list; (* newest first *)
}

let create owner =
  { owner;
    tokens = Hashtbl.create 64;
    co_access = Hashtbl.create 64;
    volumes = [];
    queries = 0;
    reconstruction_rows = 0;
    wire_requests = 0;
    wire_bytes_up = 0;
    wire_bytes_down = 0;
    idx_hits0 = Metrics.value m_idx_hits;
    idx_builds0 = Metrics.value m_idx_builds;
    tid_hits0 = Metrics.value m_tid_hits;
    tid_misses0 = Metrics.value m_tid_misses;
    map_hits0 = Metrics.value m_map_hits;
    map_misses0 = Metrics.value m_map_misses;
    batches0 = Metrics.value m_batches;
    batch_queries0 = Metrics.value m_batch_queries;
    shared_joins0 = Metrics.value m_shared_joins;
    join_reuses0 = Metrics.value m_join_reuses;
    query_metrics = [] }

let owner t = t.owner

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

(* The server-visible fingerprint of a predicate: the attribute plus the
   constant's encoding. For DET/OPE the token is deterministic, so equal
   constants produce equal fingerprints — exactly what the server sees. *)
let record_predicates t (q : Query.t) =
  List.iter
    (fun (p : Query.pred) ->
      let fingerprint =
        match p with
        | Query.Point (a, v) -> (a, "=" ^ Value.encode v)
        | Query.Range (a, lo, hi) -> (a, "[" ^ Value.encode lo ^ ";" ^ Value.encode hi)
      in
      bump t.tokens fingerprint)
    q.Query.where

let record_plan t (trace : Executor.trace) =
  let leaves = List.sort String.compare trace.Executor.plan.Planner.leaves in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter (fun b -> bump t.co_access (a, b)) rest;
      pairs rest
  in
  pairs leaves

let record_answered t q ans (trace : Executor.trace) =
  t.queries <- t.queries + 1;
  record_predicates t q;
  record_plan t trace;
  t.volumes <- Relation.cardinality ans :: t.volumes;
  t.reconstruction_rows <-
    t.reconstruction_rows + trace.Executor.rows_processed
    + trace.Executor.binning_retrieved;
  t.wire_requests <- t.wire_requests + trace.Executor.wire_requests;
  t.wire_bytes_up <- t.wire_bytes_up + trace.Executor.wire_bytes_up;
  t.wire_bytes_down <- t.wire_bytes_down + trace.Executor.wire_bytes_down

let query ?mode ?use_index ?use_tid_cache ?use_mapping_cache t q =
  let before = Metrics.snapshot () in
  match System.query ?mode ?use_index ?use_tid_cache ?use_mapping_cache t.owner q with
  | Error _ as e -> e
  | Ok (ans, trace) ->
    record_answered t q ans trace;
    t.query_metrics <- Metrics.counter_diff before (Metrics.snapshot ()) :: t.query_metrics;
    Ok (ans, trace)

(* A batch moves the process counters once, for everyone: the whole delta
   is attached to the first answered query's [query_metrics] entry (the one
   the executor also charges the shared traffic to) and the rest get [],
   so summing per-query entries still reconciles with the process totals. *)
let query_batch ?mode ?use_index ?use_tid_cache ?use_mapping_cache t qs =
  let before = Metrics.snapshot () in
  let results =
    System.query_batch ?mode ?use_index ?use_tid_cache ?use_mapping_cache t.owner qs
  in
  let batch_delta = ref (Some (Metrics.counter_diff before (Metrics.snapshot ()))) in
  List.iter2
    (fun q result ->
      match result with
      | Error _ -> ()
      | Ok (ans, trace) ->
        record_answered t q ans trace;
        let entry = match !batch_delta with Some d -> batch_delta := None; d | None -> [] in
        t.query_metrics <- entry :: t.query_metrics)
    qs results;
  results

type attr_report = {
  attr : string;
  tokens_issued : int;
  distinct_tokens : int;
}

type report = {
  queries : int;
  attrs : attr_report list;
  co_access : ((string * string) * int) list;
  result_volumes : int list;
  total_reconstruction_rows : int;
  wire_requests : int;
  wire_bytes_up : int;
  wire_bytes_down : int;
  index_hits : int;
  index_misses : int;
  tid_cache_hits : int;
  tid_cache_misses : int;
  mapping_cache_hits : int;
  mapping_cache_misses : int;
  batches : int;
  batch_queries : int;
  batch_shared_joins : int;
  batch_join_reuses : int;
  query_metrics : (string * int) list list;
}

let report t =
  let per_attr = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (attr, _) count ->
      let issued, distinct =
        Option.value (Hashtbl.find_opt per_attr attr) ~default:(0, 0)
      in
      Hashtbl.replace per_attr attr (issued + count, distinct + 1))
    t.tokens;
  let attrs =
    Hashtbl.fold
      (fun attr (tokens_issued, distinct_tokens) acc ->
        { attr; tokens_issued; distinct_tokens } :: acc)
      per_attr []
    |> List.sort (fun a b ->
           match Int.compare b.tokens_issued a.tokens_issued with
           | 0 -> String.compare a.attr b.attr
           | c -> c)
  in
  { queries = t.queries;
    attrs;
    co_access =
      Hashtbl.fold (fun pair n acc -> (pair, n) :: acc) t.co_access []
      |> List.sort (fun ((_, _), n1) ((_, _), n2) -> Int.compare n2 n1);
    result_volumes = List.rev t.volumes;
    total_reconstruction_rows = t.reconstruction_rows;
    wire_requests = t.wire_requests;
    wire_bytes_up = t.wire_bytes_up;
    wire_bytes_down = t.wire_bytes_down;
    index_hits = Metrics.value m_idx_hits - t.idx_hits0;
    index_misses = Metrics.value m_idx_builds - t.idx_builds0;
    tid_cache_hits = Metrics.value m_tid_hits - t.tid_hits0;
    tid_cache_misses = Metrics.value m_tid_misses - t.tid_misses0;
    mapping_cache_hits = Metrics.value m_map_hits - t.map_hits0;
    mapping_cache_misses = Metrics.value m_map_misses - t.map_misses0;
    batches = Metrics.value m_batches - t.batches0;
    batch_queries = Metrics.value m_batch_queries - t.batch_queries0;
    batch_shared_joins = Metrics.value m_shared_joins - t.shared_joins0;
    batch_join_reuses = Metrics.value m_join_reuses - t.join_reuses0;
    query_metrics = List.rev t.query_metrics }

let report_to_json (r : report) : Json.t =
  Json.Obj
    [ ("queries", Json.Int r.queries);
      ( "attrs",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [ ("attr", Json.String a.attr);
                   ("tokens_issued", Json.Int a.tokens_issued);
                   ("distinct_tokens", Json.Int a.distinct_tokens) ])
             r.attrs) );
      ( "co_access",
        Json.List
          (List.map
             (fun ((l1, l2), n) ->
               Json.Obj
                 [ ("left", Json.String l1);
                   ("right", Json.String l2);
                   ("count", Json.Int n) ])
             r.co_access) );
      ("result_volumes", Json.List (List.map (fun v -> Json.Int v) r.result_volumes));
      ("total_reconstruction_rows", Json.Int r.total_reconstruction_rows);
      ("wire_requests", Json.Int r.wire_requests);
      ("wire_bytes_up", Json.Int r.wire_bytes_up);
      ("wire_bytes_down", Json.Int r.wire_bytes_down);
      ("index_hits", Json.Int r.index_hits);
      ("index_misses", Json.Int r.index_misses);
      ("tid_cache_hits", Json.Int r.tid_cache_hits);
      ("tid_cache_misses", Json.Int r.tid_cache_misses);
      ("mapping_cache_hits", Json.Int r.mapping_cache_hits);
      ("mapping_cache_misses", Json.Int r.mapping_cache_misses);
      ("batches", Json.Int r.batches);
      ("batch_queries", Json.Int r.batch_queries);
      ("batch_shared_joins", Json.Int r.batch_shared_joins);
      ("batch_join_reuses", Json.Int r.batch_join_reuses);
      ( "query_metrics",
        Json.List
          (List.map
             (fun per_query ->
               Json.Obj (List.map (fun (name, d) -> (name, Json.Int d)) per_query))
             r.query_metrics) ) ]

let report_of_json (j : Json.t) : (report, string) result =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Ledger.report_of_json: bad or missing %S" name)
  in
  let int_field j name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Ledger.report_of_json: bad or missing %S" name)
  in
  let str_field j name =
    match Option.bind (Json.member name j) Json.to_string_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Ledger.report_of_json: bad or missing %S" name)
  in
  let map_m f l =
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        let* y = f x in
        Ok (y :: acc))
      l (Ok [])
  in
  let* queries = int_field j "queries" in
  let* attrs_json = field "attrs" Json.to_list_opt in
  let* attrs =
    map_m
      (fun a ->
        let* attr = str_field a "attr" in
        let* tokens_issued = int_field a "tokens_issued" in
        let* distinct_tokens = int_field a "distinct_tokens" in
        Ok { attr; tokens_issued; distinct_tokens })
      attrs_json
  in
  let* co_json = field "co_access" Json.to_list_opt in
  let* co_access =
    map_m
      (fun c ->
        let* l1 = str_field c "left" in
        let* l2 = str_field c "right" in
        let* n = int_field c "count" in
        Ok ((l1, l2), n))
      co_json
  in
  let* vol_json = field "result_volumes" Json.to_list_opt in
  let* result_volumes =
    map_m
      (fun v ->
        match Json.to_int_opt v with
        | Some n -> Ok n
        | None -> Error "Ledger.report_of_json: non-integer result volume")
      vol_json
  in
  let* total_reconstruction_rows = int_field j "total_reconstruction_rows" in
  let* wire_requests = int_field j "wire_requests" in
  let* wire_bytes_up = int_field j "wire_bytes_up" in
  let* wire_bytes_down = int_field j "wire_bytes_down" in
  let* index_hits = int_field j "index_hits" in
  let* index_misses = int_field j "index_misses" in
  let* tid_cache_hits = int_field j "tid_cache_hits" in
  let* tid_cache_misses = int_field j "tid_cache_misses" in
  let* mapping_cache_hits = int_field j "mapping_cache_hits" in
  let* mapping_cache_misses = int_field j "mapping_cache_misses" in
  let* batches = int_field j "batches" in
  let* batch_queries = int_field j "batch_queries" in
  let* batch_shared_joins = int_field j "batch_shared_joins" in
  let* batch_join_reuses = int_field j "batch_join_reuses" in
  let* qm_json = field "query_metrics" Json.to_list_opt in
  let* query_metrics =
    map_m
      (function
        | Json.Obj fields ->
          map_m
            (fun (name, v) ->
              match Json.to_int_opt v with
              | Some d -> Ok (name, d)
              | None -> Error "Ledger.report_of_json: non-integer counter delta")
            fields
        | _ -> Error "Ledger.report_of_json: query_metrics entry is not an object")
      qm_json
  in
  Ok
    { queries;
      attrs;
      co_access;
      result_volumes;
      total_reconstruction_rows;
      wire_requests;
      wire_bytes_up;
      wire_bytes_down;
      index_hits;
      index_misses;
      tid_cache_hits;
      tid_cache_misses;
      mapping_cache_hits;
      mapping_cache_misses;
      batches;
      batch_queries;
      batch_shared_joins;
      batch_join_reuses;
      query_metrics }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>session: %d queries, %d rows through reconstruction@,"
    r.queries r.total_reconstruction_rows;
  List.iter
    (fun a ->
      Format.fprintf fmt "  %s: %d tokens (%d distinct constants)@," a.attr
        a.tokens_issued a.distinct_tokens)
    r.attrs;
  List.iter
    (fun ((l1, l2), n) -> Format.fprintf fmt "  co-accessed %s + %s: %d times@," l1 l2 n)
    r.co_access;
  if r.wire_requests > 0 then
    Format.fprintf fmt "  wire: %d requests, %d B up, %d B down@," r.wire_requests
      r.wire_bytes_up r.wire_bytes_down;
  if r.index_hits + r.index_misses > 0 then
    Format.fprintf fmt "  eq-index cache: %d hits, %d builds@," r.index_hits
      r.index_misses;
  if r.tid_cache_hits + r.tid_cache_misses > 0 then
    Format.fprintf fmt "  tid-decrypt cache: %d hits, %d misses@," r.tid_cache_hits
      r.tid_cache_misses;
  if r.mapping_cache_hits + r.mapping_cache_misses > 0 then
    Format.fprintf fmt "  mapping cache: %d hits, %d misses@," r.mapping_cache_hits
      r.mapping_cache_misses;
  if r.batches > 0 then
    Format.fprintf fmt
      "  batches: %d (%d queries); shared joins: %d built, %d reused@," r.batches
      r.batch_queries r.batch_shared_joins r.batch_join_reuses;
  Format.fprintf fmt "@]"

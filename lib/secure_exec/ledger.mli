(** Holistic dynamic-leakage accounting across a query session.

    The paper's subtitle promises {e holistic leakage accounting}; at rest
    that is the closure/audit machinery, but §II's dynamic leakages accrue
    {e per query}: every issued token tells the server which (encrypted)
    constant was searched, every executed plan reveals which leaves
    co-occur in queries, and every answer's cardinality leaks volume.
    This ledger wraps an owner and records exactly that adversary's view,
    so an owner can ask "what has the server learned from the workload so
    far?" and decide when to re-key or re-partition.

    Recorded per query (all ciphertext-level — nothing the server cannot
    see): the leaves touched together, per-attribute token counts with
    distinct-token counts (repeated searches for the same constant are
    visible under DET/OPE tokens!), result volumes, and reconstruction
    traffic. [report] aggregates the session. *)

type t

val create : System.owner -> t

val owner : t -> System.owner

val query :
  ?mode:Executor.mode -> ?use_index:bool -> ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  t -> Query.t -> (Snf_relational.Relation.t * Executor.trace, string) result
(** Execute and record. Failed (unplannable) queries are not recorded. *)

val query_batch :
  ?mode:Executor.mode -> ?use_index:bool -> ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  t -> Query.t list ->
  (Snf_relational.Relation.t * Executor.trace, string) result list
(** {!System.query_batch} with recording: every answered query contributes
    its predicates, plan co-access, volume and trace traffic exactly as
    {!query} does. Because the batch moves the process-wide counters as
    one unit, [query_metrics] gets the whole batch's delta on the first
    answered query's entry and [[]] for the rest — the same convention the
    executor uses for the batch's shared wire traffic — so per-entry sums
    still reconcile with process totals. *)

type attr_report = {
  attr : string;
  tokens_issued : int;
  distinct_tokens : int;
    (** distinct searched constants observable by the server — equals the
        number of distinct plaintext constants for DET/OPE tokens *)
}

type report = {
  queries : int;
  attrs : attr_report list;            (** sorted by tokens, descending *)
  co_access : ((string * string) * int) list;
    (** leaf pairs touched by the same query, with counts — the linkage
        structure the workload reveals *)
  result_volumes : int list;           (** per query, in execution order *)
  total_reconstruction_rows : int;     (** rows through oblivious machinery *)
  wire_requests : int;
    (** client→server messages issued by the recorded queries — the
        session's traffic-shape leakage, summed from per-query traces
        (excludes outsourcing/Install traffic) *)
  wire_bytes_up : int;                 (** serialized request bytes *)
  wire_bytes_down : int;               (** serialized response bytes *)
  index_hits : int;
    (** equality-index lookups served from the server's memo cache, since
        [create] — read as a delta of the process-wide
        ["exec.eq_index.hits"] counter (the same one [Enc_relation] bumps
        and the index ablation reads) *)
  index_misses : int;                  (** lazy equality-index builds *)
  tid_cache_hits : int;
    (** join tid-decrypt cache hits since [create] — delta of the
        process-wide ["exec.join.tid_cache.hits"] counter
        [Enc_relation.decrypt_tids_cached] bumps *)
  tid_cache_misses : int;              (** tid-decrypt cache misses (bulk
                                           decrypts actually performed) *)
  mapping_cache_hits : int;
    (** crypto-free mapping cache hits since [create] — delta of the
        process-wide ["exec.mapping_cache.hits"] counter [Enc_relation]'s
        memoized token minting and cell decrypts bump *)
  mapping_cache_misses : int;          (** mapping-cache misses (crypto
                                           actually performed) *)
  batches : int;
    (** [run_batch] passes since [create] — delta of the process-wide
        ["exec.batch.count"] counter *)
  batch_queries : int;                 (** queries carried by those batches *)
  batch_shared_joins : int;            (** shared oblivious alignments built *)
  batch_join_reuses : int;             (** alignment reuses within batches *)
  query_metrics : (string * int) list list;
    (** per query, in execution order: every [Snf_obs] counter the query
        moved, with its delta (crypto ops, scans, comparisons, ...) *)
}

val report : t -> report

val report_to_json : report -> Snf_obs.Json.t

val report_of_json : Snf_obs.Json.t -> (report, string) result
(** Inverse of [report_to_json]; [Error] on shape mismatch. *)

val pp_report : Format.formatter -> report -> unit

let m_joins = Snf_obs.Metrics.counter "exec.join.joins"
let m_rows = Snf_obs.Metrics.counter "exec.join.rows_processed"
let h_batch = Snf_obs.Metrics.histogram "exec.join.batch_rows"

type stats = {
  mutable comparisons : int;
  mutable rows_processed : int;
  mutable joins : int;
}

let fresh_stats () = { comparisons = 0; rows_processed = 0; joins = 0 }

let default_mask n = Array.make n true

let check_mask label n = function
  | None -> default_mask n
  | Some m ->
    if Array.length m <> n then
      invalid_arg (Printf.sprintf "Oblivious_join: %s mask length mismatch" label);
    m

(* Explicit int-first comparator for (tid, row-index list) pairs — the
   accumulator ordering must not silently change if the payload type
   does, so polymorphic compare is banned here. *)
let compare_tid_rows (t1, r1) (t2, r2) =
  match Int.compare t1 t2 with
  | 0 -> List.compare Int.compare r1 r2
  | c -> c

(* --- packed sort keys ----------------------------------------------------- *)

module Packed = struct
  (* One immediate int per entry, ordered by plain integer comparison:
     MSB..LSB = tid(27) | side(6) | selected(1) | row(27), 61 bits total —
     strictly below the 62-bit native int, so every encodable entry is
     < max_int and max_int stays free as the bitonic padding sentinel.
     Integer order on packed keys is exactly (tid, side) order, which is
     the sort the join scan needs; [selected] and [row] ride along. *)
  let tid_bits = 27
  let side_bits = 6
  let row_bits = 27
  let max_tid = (1 lsl tid_bits) - 1
  let max_side = (1 lsl side_bits) - 1
  let max_row = (1 lsl row_bits) - 1
  let tid_shift = side_bits + 1 + row_bits
  let side_shift = 1 + row_bits

  let encode ~tid ~side ~row ~selected =
    if tid < 0 || tid > max_tid then
      invalid_arg (Printf.sprintf "Oblivious_join.Packed.encode: tid %d out of range" tid);
    if side < 0 || side > max_side then
      invalid_arg
        (Printf.sprintf "Oblivious_join.Packed.encode: side %d out of range" side);
    if row < 0 || row > max_row then
      invalid_arg (Printf.sprintf "Oblivious_join.Packed.encode: row %d out of range" row);
    (tid lsl tid_shift) lor (side lsl side_shift)
    lor ((if selected then 1 else 0) lsl row_bits)
    lor row

  let tid e = e lsr tid_shift
  let side e = (e lsr side_shift) land max_side
  let selected e = (e lsr row_bits) land 1 = 1
  let row e = e land max_row
end

(* --- pairwise cascade (reference implementation) -------------------------- *)

(* Entry: (tid, side, row index, selected). The enclave sorts all entries
   of both leaves obliviously by (tid, side); matching pairs end up
   adjacent with side 0 first. *)
let join_entries stats entries_a entries_b =
  let all = Array.append entries_a entries_b in
  stats.rows_processed <- stats.rows_processed + Array.length all;
  stats.joins <- stats.joins + 1;
  Snf_obs.Metrics.incr m_joins;
  Snf_obs.Metrics.add m_rows (Array.length all);
  Snf_obs.Metrics.observe h_batch (Array.length all);
  let counter = ref 0 in
  Bitonic.sort ~counter
    ~cmp:(fun (t1, s1, _, _) (t2, s2, _, _) ->
      match Int.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    all;
  stats.comparisons <- stats.comparisons + !counter;
  let out = ref [] in
  for i = Array.length all - 2 downto 0 do
    let t1, s1, r1, sel1 = all.(i) in
    let t2, s2, r2, sel2 = all.(i + 1) in
    if t1 = t2 && s1 = 0 && s2 = 1 && sel1 && sel2 then out := (t1, r1, r2) :: !out
  done;
  Array.of_list !out

let entries_of tids side mask =
  Array.init (Array.length tids) (fun i -> (tids.(i), side, i, mask.(i)))

let tids_of ?tids_for client =
  match tids_for with
  | Some f -> f
  | None -> fun leaf -> Enc_relation.decrypt_tids client leaf

let join_many_cascade ?tids_for ~masks stats client =
  let tids_of = tids_of ?tids_for client in
  match masks with
  | [] -> invalid_arg "Oblivious_join.join_many: no leaves"
  | [ (leaf, mask) ] ->
    let mask = check_mask "only" leaf.Enc_relation.row_count (Some mask) in
    let tids = tids_of leaf in
    let out = ref [] in
    for i = Array.length tids - 1 downto 0 do
      if mask.(i) then out := (tids.(i), [ i ]) :: !out
    done;
    Array.of_list (List.sort compare_tid_rows !out)
  | (first, mask_first) :: rest ->
    (* Accumulator: (tid, row-index list) pairs; each further leaf joins by
       synthesising entry arrays for the accumulated side. *)
    let mask = check_mask "first" first.Enc_relation.row_count (Some mask_first) in
    let acc =
      let tids = tids_of first in
      Array.mapi (fun i tid -> (tid, [ i ], mask.(i))) tids
    in
    let result =
      List.fold_left
        (fun acc_pairs (leaf, mask) ->
          let mask = check_mask "next" leaf.Enc_relation.row_count (Some mask) in
          let entries_a =
            Array.mapi (fun i (tid, _, sel) -> (tid, 0, i, sel)) acc_pairs
          in
          let entries_b = entries_of (tids_of leaf) 1 mask in
          let matched = join_entries stats entries_a entries_b in
          Array.map
            (fun (tid, ra, rb) ->
              let _, rows, _ = acc_pairs.(ra) in
              (tid, rows @ [ rb ], true))
            matched)
        acc rest
    in
    Array.of_list
      (List.sort compare_tid_rows
         (Array.to_list result
         |> List.filter_map (fun (tid, rows, sel) -> if sel then Some (tid, rows) else None)))

(* --- single-pass k-way join ----------------------------------------------- *)

(* Every decrypted tid and every row index must fit the packed layout; a
   workload outside these (astronomical) bounds falls back to the cascade,
   which has no such limits. *)
let packable sides =
  Array.length sides <= Packed.max_side + 1
  && Array.for_all
       (fun (tids, _) ->
         Array.length tids <= Packed.max_row + 1
         && Array.for_all (fun t -> t >= 0 && t <= Packed.max_tid) tids)
       sides

(* One oblivious pass over all k leaves: pack every (tid, side, row,
   selected) into an int, sort the whole batch once, then scan runs of
   equal tid. Tids are unique within a leaf, so a run holds at most one
   entry per side; a tid matches iff its run has exactly k entries — sides
   0..k-1 in order, by construction of the packed order — all selected.
   Charged to [stats] as ONE join over the total entry count. *)
let kway_core stats sides =
  let k = Array.length sides in
  let total = Array.fold_left (fun acc (t, _) -> acc + Array.length t) 0 sides in
  stats.rows_processed <- stats.rows_processed + total;
  stats.joins <- stats.joins + 1;
  Snf_obs.Metrics.incr m_joins;
  Snf_obs.Metrics.add m_rows total;
  Snf_obs.Metrics.observe h_batch total;
  let all = Array.make total 0 in
  let off = ref 0 in
  Array.iteri
    (fun side (tids, (mask : bool array)) ->
      let n = Array.length tids in
      for i = 0 to n - 1 do
        all.(!off + i) <- Packed.encode ~tid:tids.(i) ~side ~row:i ~selected:mask.(i)
      done;
      off := !off + n)
    sides;
  let counter = ref 0 in
  Bitonic.sort_ints ~counter all;
  stats.comparisons <- stats.comparisons + !counter;
  let out = ref [] in
  let i = ref 0 in
  while !i < total do
    let t = Packed.tid all.(!i) in
    let j = ref !i in
    while !j < total && Packed.tid all.(!j) = t do
      incr j
    done;
    if !j - !i = k then begin
      let rows = Array.make k 0 in
      let ok = ref true in
      for s = 0 to k - 1 do
        let e = all.(!i + s) in
        if Packed.side e <> s || not (Packed.selected e) then ok := false
        else rows.(s) <- Packed.row e
      done;
      if !ok then out := (t, rows) :: !out
    end;
    i := !j
  done;
  Array.of_list (List.rev !out)

let sides_of tids_of masks =
  Array.of_list
    (List.mapi
       (fun i ((leaf : Enc_relation.enc_leaf), mask) ->
         let mask =
           check_mask (Printf.sprintf "leaf %d" i) leaf.Enc_relation.row_count (Some mask)
         in
         (tids_of leaf, mask))
       masks)

let join_many ?tids_for ~masks stats client =
  match masks with
  | [] | [ _ ] -> join_many_cascade ?tids_for ~masks stats client
  | _ ->
    let tids_of = tids_of ?tids_for client in
    let sides = sides_of tids_of masks in
    if packable sides then
      Array.map (fun (tid, rows) -> (tid, Array.to_list rows)) (kway_core stats sides)
    else join_many_cascade ?tids_for ~masks stats client

let join_indices ?tids_for ?mask_a ?mask_b stats client a b =
  let tids_of = tids_of ?tids_for client in
  let ma = check_mask "left" a.Enc_relation.row_count mask_a in
  let mb = check_mask "right" b.Enc_relation.row_count mask_b in
  let sides = [| (tids_of a, ma); (tids_of b, mb) |] in
  if packable sides then
    Array.map (fun (tid, rows) -> (tid, rows.(0), rows.(1))) (kway_core stats sides)
  else
    join_entries stats
      (entries_of (tids_of a) 0 ma)
      (entries_of (tids_of b) 1 mb)

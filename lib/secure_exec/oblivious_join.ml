let m_joins = Snf_obs.Metrics.counter "exec.join.joins"
let m_rows = Snf_obs.Metrics.counter "exec.join.rows_processed"
let h_batch = Snf_obs.Metrics.histogram "exec.join.batch_rows"

type stats = {
  mutable comparisons : int;
  mutable rows_processed : int;
  mutable joins : int;
}

let fresh_stats () = { comparisons = 0; rows_processed = 0; joins = 0 }

let default_mask n = Array.make n true

let check_mask label n = function
  | None -> default_mask n
  | Some m ->
    if Array.length m <> n then
      invalid_arg (Printf.sprintf "Oblivious_join: %s mask length mismatch" label);
    m

(* Entry: (tid, side, row index, selected). The enclave sorts all entries
   of both leaves obliviously by (tid, side); matching pairs end up
   adjacent with side 0 first. *)
let join_entries stats entries_a entries_b =
  let all = Array.append entries_a entries_b in
  stats.rows_processed <- stats.rows_processed + Array.length all;
  stats.joins <- stats.joins + 1;
  Snf_obs.Metrics.incr m_joins;
  Snf_obs.Metrics.add m_rows (Array.length all);
  Snf_obs.Metrics.observe h_batch (Array.length all);
  let counter = ref 0 in
  Bitonic.sort ~counter
    ~cmp:(fun (t1, s1, _, _) (t2, s2, _, _) ->
      match Int.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    all;
  stats.comparisons <- stats.comparisons + !counter;
  let out = ref [] in
  for i = Array.length all - 2 downto 0 do
    let t1, s1, r1, sel1 = all.(i) in
    let t2, s2, r2, sel2 = all.(i + 1) in
    if t1 = t2 && s1 = 0 && s2 = 1 && sel1 && sel2 then out := (t1, r1, r2) :: !out
  done;
  Array.of_list !out

(* Tid decryption is the per-row crypto cost of a join's enclave side;
   it is pure per row, so it fans out over domains. *)
let decrypt_tids client (leaf : Enc_relation.enc_leaf) side mask =
  let tids = leaf.Enc_relation.tids in
  Parallel.tabulate (Array.length tids) (fun i ->
      (Enc_relation.decrypt_tid client ~leaf:leaf.Enc_relation.label tids.(i), side, i, mask.(i)))

let join_indices ?mask_a ?mask_b stats client a b =
  let ma = check_mask "left" a.Enc_relation.row_count mask_a in
  let mb = check_mask "right" b.Enc_relation.row_count mask_b in
  join_entries stats (decrypt_tids client a 0 ma) (decrypt_tids client b 1 mb)

let join_many ~masks stats client =
  match masks with
  | [] -> invalid_arg "Oblivious_join.join_many: no leaves"
  | [ (leaf, mask) ] ->
    let mask = check_mask "only" leaf.Enc_relation.row_count (Some mask) in
    let out = ref [] in
    Array.iteri
      (fun i ct ->
        if mask.(i) then
          out := (Enc_relation.decrypt_tid client ~leaf:leaf.Enc_relation.label ct, [ i ]) :: !out)
      leaf.Enc_relation.tids;
    Array.of_list (List.sort compare !out)
  | (first, mask_first) :: rest ->
    (* Accumulator: (tid, row-index list) pairs; each further leaf joins by
       synthesising entry arrays for the accumulated side. *)
    let mask = check_mask "first" first.Enc_relation.row_count (Some mask_first) in
    let acc =
      let tids = first.Enc_relation.tids in
      ref
        (Parallel.tabulate (Array.length tids) (fun i ->
             let tid =
               Enc_relation.decrypt_tid client ~leaf:first.Enc_relation.label tids.(i)
             in
             (tid, [ i ], mask.(i))))
    in
    let result =
      List.fold_left
        (fun acc_pairs (leaf, mask) ->
          let mask = check_mask "next" leaf.Enc_relation.row_count (Some mask) in
          let entries_a =
            Array.mapi (fun i (tid, _, sel) -> (tid, 0, i, sel)) acc_pairs
          in
          let entries_b = decrypt_tids client leaf 1 mask in
          let matched = join_entries stats entries_a entries_b in
          Array.map
            (fun (tid, ra, rb) ->
              let _, rows, _ = acc_pairs.(ra) in
              (tid, rows @ [ rb ], true))
            matched)
        !acc rest
    in
    Array.of_list
      (List.sort compare
         (Array.to_list result
         |> List.filter_map (fun (tid, rows, sel) -> if sel then Some (tid, rows) else None)))

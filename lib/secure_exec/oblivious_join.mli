(** Oblivious tid-join across encrypted leaves.

    Models the enclave-assisted reconstruction of §III-B: the enclave
    (which holds the client's keys) decrypts the tid columns of the
    leaves internally, then runs a {e sort-merge join over a bitonic
    network} — concatenate tagged entries, obliviously sort by
    (tid, side), scan adjacent runs. The server observes only the public
    leaf sizes and the data-independent network schedule; in particular it
    never learns which tid of one leaf matched which row of another
    (sub-relation unlinkability during execution).

    Selection masks are applied {e inside} the enclave after the oblivious
    sort, so the network always processes the full leaves — selectivity is
    not leaked through the join's trace. The comparison counter reports
    the real number of compare-exchanges executed, which the cost model
    converts to estimated wall-clock time (Figure 3).

    The hot path packs each (tid, side, row, selected) entry into a single
    immediate int ({!Packed}) and sorts {e all} leaves' entries in one
    {!Bitonic.sort_ints} pass — a true k-way join — instead of cascading
    pairwise joins. The cascade survives as {!join_many_cascade}, the
    reference baseline/oracle the equivalence tests and the [micro-join]
    bench compare against. Tid decryption is injectable via [?tids_for]
    so the executor can plug in [Enc_relation.decrypt_tids_cached]. *)

type stats = {
  mutable comparisons : int;  (** compare-exchanges inside bitonic sorts *)
  mutable rows_processed : int; (** total entries fed to sort networks *)
  mutable joins : int;          (** oblivious join passes: the k-way path
                                    charges ONE join per query over the
                                    summed entry count, where the cascade
                                    charged [k - 1] pairwise joins *)
}

val fresh_stats : unit -> stats

(** Packed sort key: MSB..LSB = tid(27) | side(6) | selected(1) | row(27),
    61 bits — every encodable key is [< max_int], leaving [max_int] free
    as the {!Bitonic.sort_ints} padding sentinel. Plain integer order on
    packed keys is exactly (tid, side) order. *)
module Packed : sig
  val max_tid : int
  (** [2^27 - 1] *)

  val max_side : int
  (** [2^6 - 1] — at most 64 leaves per k-way pass *)

  val max_row : int
  (** [2^27 - 1] *)

  val encode : tid:int -> side:int -> row:int -> selected:bool -> int
  (** @raise Invalid_argument when any field is negative or above its
      bound. *)

  val tid : int -> int
  val side : int -> int
  val selected : int -> bool
  val row : int -> int
end

val join_indices :
  ?tids_for:(Enc_relation.enc_leaf -> int array) ->
  ?mask_a:bool array -> ?mask_b:bool array ->
  stats -> Enc_relation.client ->
  Enc_relation.enc_leaf -> Enc_relation.enc_leaf ->
  (int * int * int) array
(** [(tid, row_a, row_b)] for every tid present (and mask-selected) on both
    sides, in ascending tid order. Masks default to all-true and must
    match the leaf lengths. [tids_for] overrides per-leaf tid decryption
    (default: [Enc_relation.decrypt_tids client]). *)

val join_many :
  ?tids_for:(Enc_relation.enc_leaf -> int array) ->
  masks:(Enc_relation.enc_leaf * bool array) list ->
  stats -> Enc_relation.client ->
  (int * int list) array
(** Single k-way oblivious pass across the leaves: [(tid, row index per
    leaf)] for tids selected in every leaf, ascending by tid. Equals
    {!join_many_cascade} on the answer; [stats] counts one join over the
    summed entry count rather than [k - 1] cascade steps. Inputs outside
    the {!Packed} bounds (more than 64 leaves, tids or row counts beyond
    [2^27]) fall back to the cascade transparently.
    @raise Invalid_argument on an empty list. *)

val join_many_cascade :
  ?tids_for:(Enc_relation.enc_leaf -> int array) ->
  masks:(Enc_relation.enc_leaf * bool array) list ->
  stats -> Enc_relation.client ->
  (int * int list) array
(** The pre-packing pairwise cascade, kept as the reference baseline and
    differential oracle for {!join_many} (same answers; [k - 1] joins
    charged to [stats], generic boxed sorts inside).
    @raise Invalid_argument on an empty list. *)

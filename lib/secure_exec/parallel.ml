module Prng = Snf_crypto.Prng
module Prf = Snf_crypto.Prf

let g_domains = Snf_obs.Metrics.gauge "exec.parallel.domains"

let parse_env () =
  match Sys.getenv_opt "SNF_DOMAINS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> Domain.recommended_domain_count ()

let configured = ref None

let domain_count () =
  match !configured with
  | Some d -> d
  | None ->
    let d = parse_env () in
    configured := Some d;
    d

let set_domain_count d =
  if d < 1 then invalid_arg "Parallel.set_domain_count: must be >= 1";
  configured := Some d

(* Below this many items the Domain.spawn overhead dominates any win. *)
let min_parallel_items = 32

let tabulate ?domains n f =
  if n < 0 then invalid_arg "Parallel.tabulate: negative size";
  let d = min (max 1 (Option.value domains ~default:(domain_count ()))) n in
  (* An explicit ?domains is the caller saying the items are coarse-grained
     (e.g. whole-leaf filters); only the default path applies the
     small-input cutoff. *)
  if d = 1 || (domains = None && n < min_parallel_items) then Array.init n f
  else begin
    (* Contiguous chunks, one per domain; chunk results are concatenated in
       chunk order, so the output is independent of scheduling. *)
    let chunk = (n + d - 1) / d in
    let bounds =
      List.init d (fun i ->
          let lo = i * chunk in
          (lo, min chunk (n - lo)))
      |> List.filter (fun (_, len) -> len > 0)
    in
    match bounds with
    | [] -> [||]
    | (lo0, len0) :: rest ->
      Snf_obs.Metrics.set_gauge g_domains (float_of_int d);
      (* Workers flush their metric shard and span buffer before dying:
         that is the "merge at join points" making Snf_obs totals
         deterministic under any domain count. *)
      let workers =
        List.map
          (fun (lo, len) ->
            Domain.spawn (fun () ->
                let r = Array.init len (fun i -> f (lo + i)) in
                Snf_obs.flush ();
                r))
          rest
      in
      let first = Array.init len0 (fun i -> f (lo0 + i)) in
      Array.concat (first :: List.map Domain.join workers)
  end

let map ?domains f arr = tabulate ?domains (Array.length arr) (fun i -> f arr.(i))

let map_list ?domains f l =
  Array.to_list (map ?domains f (Array.of_list l))

let item_prng ~key i = Prng.of_int64 (Prf.mac_int key i)

(** Multicore fan-out with deterministic results (OCaml 5 [Domain]s).

    The execution layer for bulk crypto work: column encryption, randomizer
    pool precomputation, per-partition server filters and join-side tid
    decryption all fan out through [tabulate]/[map]. Work is split into
    contiguous chunks, one per domain, and chunk results are concatenated
    in chunk order — outputs are bit-identical for every domain count.

    Randomness discipline: workers never share a mutable PRNG. Any job
    that needs randomness derives a {e per-item} generator with
    [item_prng], whose stream depends only on (key, item index) — see
    [Snf_crypto.Prng.of_int64]. That is what makes ciphertexts independent
    of the worker count, and it is enforced by the determinism tests.

    The default domain count comes from the [SNF_DOMAINS] environment
    variable when set, else [Domain.recommended_domain_count ()]. *)

val domain_count : unit -> int

val set_domain_count : int -> unit
(** Override the default for subsequent calls (benchmarks and tests).
    @raise Invalid_argument below 1. *)

val tabulate : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [tabulate n f] is [Array.init n f], computed on up to [?domains]
    (default [domain_count ()]) domains. [f] must be safe to call from
    any domain and must not share mutable state across items. Small
    inputs run sequentially unless [?domains] is passed explicitly —
    an explicit count marks the items as coarse-grained. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val item_prng : key:Snf_crypto.Prf.key -> int -> Snf_crypto.Prng.t
(** [item_prng ~key i] is the private randomness stream of item [i]:
    a splitmix64 generator seeded by a PRF of the index. *)

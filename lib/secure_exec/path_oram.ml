module Prng = Snf_crypto.Prng

let m_accesses = Snf_obs.Metrics.counter "exec.oram.accesses"
let m_bucket_touches = Snf_obs.Metrics.counter "exec.oram.bucket_touches"

(* Buckets are fixed capacity (Z slots), so the tree is two flat arrays
   indexed by [heap_index * Z + slot]: block ids (-1 = empty slot) and the
   block payloads. Compared with a [block list array] this allocates
   nothing per access — path read-in and greedy write-back only move
   entries between the arrays, the stash and a reused scratch buffer. *)
type t = {
  bucket_size : int;
  num_blocks : int;
  block_size : int;
  depth : int;                          (* levels 0..depth; leaves at depth *)
  bucket_ids : int array;               (* num_buckets * bucket_size; -1 empty *)
  bucket_data : string array;           (* payload for each occupied slot *)
  position : int array;                 (* block id -> leaf index in [0, 2^depth) *)
  stash : (int, string) Hashtbl.t;
  (* Write-back scratch, reused across accesses (capacity bucket_size). *)
  scratch_ids : int array;
  scratch_data : string array;
  prng : Prng.t;
  mutable accesses : int;
  mutable touches : int;
  mutable observed : int list;
}

let create ?(bucket_size = 4) ~num_blocks ~block_size prng =
  if num_blocks < 1 then invalid_arg "Path_oram.create: num_blocks < 1";
  if bucket_size < 1 then invalid_arg "Path_oram.create: bucket_size < 1";
  let rec depth_for leaves d = if leaves >= num_blocks then d else depth_for (leaves * 2) (d + 1) in
  let depth = depth_for 1 0 in
  let num_leaves = 1 lsl depth in
  let num_buckets = (2 * num_leaves) - 1 in
  { bucket_size;
    num_blocks;
    block_size;
    depth;
    bucket_ids = Array.make (num_buckets * bucket_size) (-1);
    bucket_data = Array.make (num_buckets * bucket_size) "";
    position = Array.init num_blocks (fun _ -> Prng.int prng num_leaves);
    stash = Hashtbl.create 64;
    scratch_ids = Array.make bucket_size (-1);
    scratch_data = Array.make bucket_size "";
    prng;
    accesses = 0;
    touches = 0;
    observed = [] }

let depth t = t.depth

(* Heap index of the bucket at [level] on the path to [leaf]. *)
let bucket_index t ~leaf ~level =
  let leaf_heap = (1 lsl t.depth) - 1 + leaf in
  let rec up idx l = if l = 0 then idx else up ((idx - 1) / 2) (l - 1) in
  up leaf_heap (t.depth - level)

(* Does the path to [leaf] pass through the bucket at [level] on the path
   to [leaf']? Equivalent to the two leaves sharing a prefix of length
   [level]. *)
let path_intersects t ~leaf ~leaf' ~level =
  leaf lsr (t.depth - level) = leaf' lsr (t.depth - level)

let zero_block t = String.make t.block_size '\x00'

let access t id write_data =
  if id < 0 || id >= t.num_blocks then invalid_arg "Path_oram: block id out of range";
  (match write_data with
   | Some d when String.length d <> t.block_size ->
     invalid_arg "Path_oram: wrong block size"
   | _ -> ());
  t.accesses <- t.accesses + 1;
  Snf_obs.Metrics.incr m_accesses;
  let touches0 = t.touches in
  let x = t.position.(id) in
  t.observed <- x :: t.observed;
  t.position.(id) <- Prng.int t.prng (1 lsl t.depth);
  (* Read the whole path into the stash. *)
  for level = 0 to t.depth do
    let bi = bucket_index t ~leaf:x ~level in
    t.touches <- t.touches + 1;
    let base = bi * t.bucket_size in
    for s = 0 to t.bucket_size - 1 do
      let bid = t.bucket_ids.(base + s) in
      if bid >= 0 then begin
        Hashtbl.replace t.stash bid t.bucket_data.(base + s);
        t.bucket_ids.(base + s) <- -1;
        t.bucket_data.(base + s) <- ""
      end
    done
  done;
  let result =
    match Hashtbl.find_opt t.stash id with
    | Some d -> d
    | None -> zero_block t
  in
  (match write_data with
   | Some d -> Hashtbl.replace t.stash id d
   | None -> Hashtbl.replace t.stash id result);
  (* Write back greedily, deepest level first. Up to Z eligible stash
     blocks are staged in the scratch buffer, then moved into the bucket's
     slots — no per-level list allocation. *)
  for level = t.depth downto 0 do
    let bi = bucket_index t ~leaf:x ~level in
    t.touches <- t.touches + 1;
    let n = ref 0 in
    Hashtbl.iter
      (fun bid data ->
        if !n < t.bucket_size
           && path_intersects t ~leaf:t.position.(bid) ~leaf':x ~level
        then begin
          t.scratch_ids.(!n) <- bid;
          t.scratch_data.(!n) <- data;
          incr n
        end)
      t.stash;
    let base = bi * t.bucket_size in
    for s = 0 to t.bucket_size - 1 do
      if s < !n then begin
        Hashtbl.remove t.stash t.scratch_ids.(s);
        t.bucket_ids.(base + s) <- t.scratch_ids.(s);
        t.bucket_data.(base + s) <- t.scratch_data.(s)
      end
      else begin
        t.bucket_ids.(base + s) <- -1;
        t.bucket_data.(base + s) <- ""
      end
    done
  done;
  Snf_obs.Metrics.add m_bucket_touches (t.touches - touches0);
  result

let read t id = access t id None

let write t id data = ignore (access t id (Some data))

let access_count t = t.accesses
let bucket_touches t = t.touches
let stash_size t = Hashtbl.length t.stash
let paths_observed t = t.observed

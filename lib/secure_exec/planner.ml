module Scheme = Snf_crypto.Scheme
module Partition = Snf_core.Partition

type plan = {
  leaves : string list;
  joins : int;
  pred_home : (Query.pred * string) list;
  proj_home : (string * string) list;
}

let supports scheme (p : Query.pred) =
  match p with
  | Query.Point _ -> Scheme.supports_equality_predicate scheme
  | Query.Range _ -> Scheme.supports_range_predicate scheme

(* The unit of covering: projections need any copy of the attribute,
   predicates need a copy under a scheme that can evaluate them. *)
type item = Proj of string | Pred of Query.pred

let covers (leaf : Partition.leaf) = function
  | Proj a -> Partition.mem_leaf leaf a
  | Pred p -> (
    match Partition.scheme_in_leaf leaf (Query.pred_attr p) with
    | Some s -> supports s p
    | None -> false)

let items_of_query (q : Query.t) =
  List.map (fun a -> Proj a) q.Query.select @ List.map (fun p -> Pred p) q.Query.where

(* label -> leaf lookup table, built once per planning call so [assemble]
   and [feasible] stop paying O(leaves) List.find per item. First
   occurrence wins, matching the List.find behaviour on duplicate labels. *)
let leaf_table rep =
  let tbl = Hashtbl.create (2 * List.length rep) in
  List.iter
    (fun (l : Partition.leaf) ->
      if not (Hashtbl.mem tbl l.Partition.label) then Hashtbl.add tbl l.Partition.label l)
    rep;
  tbl

let assemble ~tbl q chosen =
  let leaf_of label = Hashtbl.find tbl label in
  let home_for item =
    List.find_opt (fun label -> covers (leaf_of label) item) chosen
  in
  let pred_home =
    List.filter_map
      (fun p -> Option.map (fun l -> (p, l)) (home_for (Pred p)))
      q.Query.where
  in
  let proj_home =
    List.filter_map
      (fun a -> Option.map (fun l -> (a, l)) (home_for (Proj a)))
      q.Query.select
  in
  { leaves = chosen;
    joins = max 0 (List.length chosen - 1);
    pred_home;
    proj_home }

let feasible ~tbl q chosen =
  let leaf_of label = Hashtbl.find tbl label in
  List.for_all
    (fun item -> List.exists (fun label -> covers (leaf_of label) item) chosen)
    (items_of_query q)

let check_items_coverable rep q =
  let uncoverable =
    List.find_opt
      (fun item -> not (List.exists (fun l -> covers l item) rep))
      (items_of_query q)
  in
  match uncoverable with
  | None -> Ok ()
  | Some (Proj a) -> Error (Printf.sprintf "attribute %S is stored in no leaf" a)
  | Some (Pred p) ->
    Error
      (Printf.sprintf "no stored copy of %S can evaluate the predicate"
         (Query.pred_attr p))

let greedy rep q =
  let rec go chosen uncovered =
    if uncovered = [] then Ok (List.rev chosen)
    else begin
      let candidates =
        List.filter
          (fun (l : Partition.leaf) -> not (List.mem l.label chosen))
          rep
      in
      let scored =
        List.filter_map
          (fun (l : Partition.leaf) ->
            let gain = List.length (List.filter (covers l) uncovered) in
            if gain = 0 then None else Some (gain, List.length l.columns, l))
          candidates
      in
      match
        List.sort
          (fun (g1, w1, _) (g2, w2, _) ->
            match Int.compare g2 g1 with 0 -> Int.compare w1 w2 | c -> c)
          scored
      with
      | [] -> Error "uncoverable query (internal: coverable check passed?)"
      | (_, _, best) :: _ ->
        go (best.label :: chosen)
          (List.filter (fun item -> not (covers best item)) uncovered)
    end
  in
  go [] (items_of_query q)

let rec subsets_upto k = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets_upto k rest in
    let with_x =
      if k = 0 then []
      else List.map (fun s -> x :: s) (subsets_upto (k - 1) rest)
    in
    with_x @ List.filter (fun s -> List.length s <= k) without

let optimal ~tbl cost rep q =
  let relevant =
    List.filter
      (fun (l : Partition.leaf) -> List.exists (covers l) (items_of_query q))
      rep
    |> List.map (fun (l : Partition.leaf) -> l.label)
  in
  let candidates =
    subsets_upto 6 relevant
    |> List.filter (fun s -> s <> [] && feasible ~tbl q s)
  in
  match candidates with
  | [] -> Error "no feasible cover within the size bound"
  | _ ->
    let best =
      List.fold_left
        (fun acc chosen ->
          let p = assemble ~tbl q chosen in
          let c = cost p in
          match acc with
          | Some (c0, _) when c0 <= c -> acc
          | _ -> Some (c, p))
        None candidates
    in
    (match best with Some (_, p) -> Ok p | None -> Error "unreachable")

(* --- plan memoization ------------------------------------------------------ *)

(* A greedy plan depends only on the representation and the query's
   SHAPE — the projection list plus, per predicate, its attribute and
   kind (point vs range); the searched constants influence nothing
   ([covers] only looks at schemes). Plans are therefore memoized per
   (representation digest, query shape). The memo is per-domain
   ([Domain.DLS]): [plan] runs inside [Parallel] workers (the experiment
   planning loops), and a shared table would race. *)

type memo_plan = {
  m_leaves : string list;
  m_joins : int;
  m_pred_labels : string option list; (* one per [q.where] position *)
  m_proj_home : (string * string) list;
}

type memo_state = {
  (* The DLS slot is per-domain, but every systhread of the domain (a
     networked server's clients, the concurrency tests) shares it. *)
  lock : Mutex.t;
  (* Representation digests keyed by physical identity — the experiment
     loops plan thousands of queries against a handful of long-lived
     representation values, so digesting once per value is enough. *)
  mutable digests : (Partition.t * string) list;
  plans : (string * string, (memo_plan, string) result) Hashtbl.t;
}

let max_digest_entries = 16
let max_plan_entries = 1024

let memo_key : memo_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { lock = Mutex.create (); digests = []; plans = Hashtbl.create 64 })

let rep_digest st rep =
  match List.find_opt (fun (r, _) -> r == rep) st.digests with
  | Some (_, d) -> d
  | None ->
    let d = Digest.string (Marshal.to_string rep []) in
    st.digests <-
      (rep, d)
      :: (if List.length st.digests >= max_digest_entries then
            List.filteri (fun i _ -> i < max_digest_entries - 1) st.digests
          else st.digests);
    d

let shape_key (q : Query.t) =
  let b = Buffer.create 64 in
  List.iter
    (fun a ->
      Buffer.add_string b a;
      Buffer.add_char b '\x00')
    q.Query.select;
  Buffer.add_char b '\x01';
  List.iter
    (fun p ->
      Buffer.add_char b (match p with Query.Point _ -> 'P' | Query.Range _ -> 'R');
      Buffer.add_string b (Query.pred_attr p);
      Buffer.add_char b '\x00')
    q.Query.where;
  Buffer.contents b

let to_memo (p : plan) (q : Query.t) =
  { m_leaves = p.leaves;
    m_joins = p.joins;
    (* Record, per where-position, the home label (or None for a dropped
       predicate) so the plan can be rebuilt around the actual constants
       of a same-shape query. *)
    m_pred_labels =
      List.map (fun p0 -> List.assoc_opt p0 p.pred_home) q.Query.where;
    m_proj_home = p.proj_home }

let of_memo (m : memo_plan) (q : Query.t) =
  { leaves = m.m_leaves;
    joins = m.m_joins;
    pred_home =
      List.concat
        (List.map2
           (fun p -> function Some l -> [ (p, l) ] | None -> [])
           q.Query.where m.m_pred_labels);
    proj_home = m.m_proj_home }

let plan_uncached ?(selector = `Greedy) rep q =
  match check_items_coverable rep q with
  | Error e -> Error e
  | Ok () ->
    let tbl = leaf_table rep in
    (match selector with
     | `Greedy -> Result.map (assemble ~tbl q) (greedy rep q)
     | `Optimal cost -> optimal ~tbl cost rep q)

let plan ?(selector = `Greedy) rep q =
  match selector with
  | `Optimal _ ->
    (* Cost functions are arbitrary closures (and may inspect the
       constants through pred_home), so only the greedy path memoizes. *)
    plan_uncached ~selector rep q
  | `Greedy ->
    let st = Domain.DLS.get memo_key in
    let key, hit =
      Mutex.protect st.lock (fun () ->
          let key = (rep_digest st rep, shape_key q) in
          (key, Hashtbl.find_opt st.plans key))
    in
    (match hit with
     | Some (Ok m) -> Ok (of_memo m q)
     | Some (Error e) -> Error e
     | None ->
       (* Planning itself runs unlocked; a concurrent same-shape miss
          just plans twice and the second replace wins harmlessly. *)
       let result = plan_uncached ~selector:`Greedy rep q in
       Mutex.protect st.lock (fun () ->
           if Hashtbl.length st.plans >= max_plan_entries then
             Hashtbl.reset st.plans;
           Hashtbl.replace st.plans key (Result.map (fun p -> to_memo p q) result));
       result)

let single_leaf p = List.length p.leaves <= 1

let pp fmt p =
  Format.fprintf fmt "leaves [%s], %d joins" (String.concat "; " p.leaves) p.joins

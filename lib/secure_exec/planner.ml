module Scheme = Snf_crypto.Scheme
module Partition = Snf_core.Partition
module Metrics = Snf_obs.Metrics

type plan = {
  leaves : string list;
  joins : int;
  pred_home : (Query.pred * string) list;
  proj_home : (string * string) list;
}

(* Every planning call resolves to exactly one of these two counters —
   the invariant the differential harness checks per query. *)
let m_cache_hit = Metrics.counter "plan.cache.hit"
let m_cache_miss = Metrics.counter "plan.cache.miss"
let m_enumerated = Metrics.counter "plan.candidates.enumerated"

let supports scheme (p : Query.pred) =
  match p with
  | Query.Point _ -> Scheme.supports_equality_predicate scheme
  | Query.Range _ -> Scheme.supports_range_predicate scheme

(* The unit of covering: projections need any copy of the attribute,
   predicates need a copy under a scheme that can evaluate them. *)
type item = Proj of string | Pred of Query.pred

let covers (leaf : Partition.leaf) = function
  | Proj a -> Partition.mem_leaf leaf a
  | Pred p -> (
    match Partition.scheme_in_leaf leaf (Query.pred_attr p) with
    | Some s -> supports s p
    | None -> false)

let items_of_query (q : Query.t) =
  List.map (fun a -> Proj a) q.Query.select @ List.map (fun p -> Pred p) q.Query.where

(* label -> leaf lookup table, built once per planning call so [assemble]
   and [feasible] stop paying O(leaves) List.find per item. First
   occurrence wins, matching the List.find behaviour on duplicate labels. *)
let leaf_table rep =
  let tbl = Hashtbl.create (2 * List.length rep) in
  List.iter
    (fun (l : Partition.leaf) ->
      if not (Hashtbl.mem tbl l.Partition.label) then Hashtbl.add tbl l.Partition.label l)
    rep;
  tbl

let assemble ~tbl q chosen =
  let leaf_of label = Hashtbl.find tbl label in
  let home_for item =
    List.find_opt (fun label -> covers (leaf_of label) item) chosen
  in
  let pred_home =
    List.filter_map
      (fun p -> Option.map (fun l -> (p, l)) (home_for (Pred p)))
      q.Query.where
  in
  let proj_home =
    List.filter_map
      (fun a -> Option.map (fun l -> (a, l)) (home_for (Proj a)))
      q.Query.select
  in
  { leaves = chosen;
    joins = max 0 (List.length chosen - 1);
    pred_home;
    proj_home }

let feasible ~tbl q chosen =
  let leaf_of label = Hashtbl.find tbl label in
  List.for_all
    (fun item -> List.exists (fun label -> covers (leaf_of label) item) chosen)
    (items_of_query q)

let check_items_coverable rep q =
  let uncoverable =
    List.find_opt
      (fun item -> not (List.exists (fun l -> covers l item) rep))
      (items_of_query q)
  in
  match uncoverable with
  | None -> Ok ()
  | Some (Proj a) -> Error (Printf.sprintf "attribute %S is stored in no leaf" a)
  | Some (Pred p) ->
    Error
      (Printf.sprintf "no stored copy of %S can evaluate the predicate"
         (Query.pred_attr p))

let greedy rep q =
  let rec go chosen uncovered =
    if uncovered = [] then Ok (List.rev chosen)
    else begin
      let candidates =
        List.filter
          (fun (l : Partition.leaf) -> not (List.mem l.label chosen))
          rep
      in
      let scored =
        List.filter_map
          (fun (l : Partition.leaf) ->
            let gain = List.length (List.filter (covers l) uncovered) in
            if gain = 0 then None else Some (gain, List.length l.columns, l))
          candidates
      in
      match
        List.sort
          (fun (g1, w1, _) (g2, w2, _) ->
            match Int.compare g2 g1 with 0 -> Int.compare w1 w2 | c -> c)
          scored
      with
      | [] -> Error "uncoverable query (internal: coverable check passed?)"
      | (_, _, best) :: _ ->
        go (best.label :: chosen)
          (List.filter (fun item -> not (covers best item)) uncovered)
    end
  in
  go [] (items_of_query q)

let rec subsets_upto k = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets_upto k rest in
    let with_x =
      if k = 0 then []
      else List.map (fun s -> x :: s) (subsets_upto (k - 1) rest)
    in
    with_x @ List.filter (fun s -> List.length s <= k) without

(* --- candidates, notes, decisions -------------------------------------------- *)

type candidate = { cand_leaves : string list; cand_cost : float }

type note =
  | Truncated_covers of { bound : int; relevant : int }
  | Truncated_orders of { bound : int; cover_size : int }

let note_to_string = function
  | Truncated_covers { bound; relevant } ->
    Printf.sprintf
      "cover enumeration truncated: %d relevant leaves, subsets capped at %d"
      relevant bound
  | Truncated_orders { bound; cover_size } ->
    Printf.sprintf
      "join-order enumeration truncated: %d-leaf cover, orders capped at %d"
      cover_size bound

type decision = {
  d_plan : plan;
  d_estimate : float option;
  d_rejected : candidate list;
  d_notes : note list;
  d_enumerated : int;
  d_cache : [ `Hit | `Miss ];
  d_selector : string;
}

(* --- planner handles ---------------------------------------------------------- *)

type pricing = {
  price : plan -> float;
  stamp : unit -> int * int;  (* (key epoch, stats version) at call time *)
  max_cover : int;
  max_orders : int;
  p_label : string;
  p_id : int;
}

type handle =
  | Greedy
  | Priced of pricing
  | Adhoc of (plan -> float)

let optimal f = Adhoc f

let next_handle_id = Atomic.make 0

let cost_based ?(max_cover = 6) ?(max_orders = 6) ?(label = "cost") ~price ~stamp
    () =
  Priced
    { price;
      stamp;
      max_cover = max 1 max_cover;
      max_orders = max 1 max_orders;
      p_label = label;
      p_id = Atomic.fetch_and_add next_handle_id 1 }

let selector_name = function
  | Greedy -> "greedy"
  | Priced p -> p.p_label
  | Adhoc _ -> "optimal"

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map
          (fun p -> x :: p)
          (permutations (List.filter (fun y -> y <> x) l)))
      l

let max_rejected_kept = 8

(* Price every feasible cover (and, when cheap enough, every join order
   of it); the caller's pricer decides. Ties keep the earliest candidate
   in enumeration order, so the answer is deterministic. *)
let enumerate ~tbl ~price ~max_cover ~max_orders ~explore_orders rep q =
  let items = items_of_query q in
  let relevant =
    List.filter
      (fun (l : Partition.leaf) -> List.exists (covers l) items)
      rep
    |> List.map (fun (l : Partition.leaf) -> l.label)
  in
  let notes = ref [] in
  if List.length relevant > max_cover then
    notes :=
      Truncated_covers { bound = max_cover; relevant = List.length relevant }
      :: !notes;
  let covers_ =
    subsets_upto max_cover relevant
    |> List.filter (fun s -> s <> [] && feasible ~tbl q s)
  in
  match covers_ with
  | [] -> Error "no feasible cover within the size bound"
  | _ ->
    let priced = ref [] and count = ref 0 in
    List.iter
      (fun cover ->
        let k = List.length cover in
        let orders =
          if explore_orders && factorial k <= max_orders then permutations cover
          else begin
            if
              explore_orders && k > 1
              && not
                   (List.exists
                      (function Truncated_orders _ -> true | _ -> false)
                      !notes)
            then
              notes :=
                Truncated_orders { bound = max_orders; cover_size = k } :: !notes;
            [ cover ]
          end
        in
        List.iter
          (fun order ->
            let p = assemble ~tbl q order in
            incr count;
            priced := (price p, p) :: !priced)
          orders)
      covers_;
    let cands = List.rev !priced in
    let best =
      List.fold_left
        (fun acc (c, p) ->
          match acc with Some (c0, _) when c0 <= c -> acc | _ -> Some (c, p))
        None cands
    in
    (match best with
     | None -> Error "unreachable"
     | Some (c, p) ->
       let rejected =
         List.filter (fun (_, p') -> p' != p) cands
         |> List.map (fun (c', p') -> { cand_leaves = p'.leaves; cand_cost = c' })
         |> List.stable_sort (fun a b -> compare a.cand_cost b.cand_cost)
         |> List.filteri (fun i _ -> i < max_rejected_kept)
       in
       Ok (p, c, rejected, List.rev !notes, !count))

(* --- plan memoization ------------------------------------------------------ *)

(* A greedy plan depends only on the representation and the query's
   SHAPE — the projection list plus, per predicate, its attribute and
   kind (point vs range); the searched constants influence nothing
   ([covers] only looks at schemes). A cost-based plan additionally
   depends on the statistics version and the key epoch its handle
   reports, so its cache entries carry that stamp and a stale stamp
   reads as a miss. The memo is per-domain ([Domain.DLS]): [plan] runs
   inside [Parallel] workers (the experiment planning loops), and a
   shared table would race. *)

type memo_plan = {
  m_leaves : string list;
  m_joins : int;
  m_pred_labels : string option list; (* one per [q.where] position *)
  m_proj_home : (string * string) list;
}

type memo_decision = {
  e_result : (memo_plan * float option * candidate list * note list, string) result;
  e_stamp : (int * int) option;  (* None for greedy (stamp-independent) *)
}

type memo_state = {
  (* The DLS slot is per-domain, but every systhread of the domain (a
     networked server's clients, the concurrency tests) shares it. *)
  lock : Mutex.t;
  (* Representation digests keyed by physical identity — the experiment
     loops plan thousands of queries against a handful of long-lived
     representation values, so digesting once per value is enough. *)
  mutable digests : (Partition.t * string) list;
  plans : (string * string * string, memo_decision) Hashtbl.t;
}

let max_digest_entries = 16
let max_plan_entries = 1024

let memo_key : memo_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { lock = Mutex.create (); digests = []; plans = Hashtbl.create 64 })

let rep_digest st rep =
  match List.find_opt (fun (r, _) -> r == rep) st.digests with
  | Some (_, d) -> d
  | None ->
    let d = Digest.string (Marshal.to_string rep []) in
    st.digests <-
      (rep, d)
      :: (if List.length st.digests >= max_digest_entries then
            List.filteri (fun i _ -> i < max_digest_entries - 1) st.digests
          else st.digests);
    d

let shape_key (q : Query.t) =
  let b = Buffer.create 64 in
  List.iter
    (fun a ->
      Buffer.add_string b a;
      Buffer.add_char b '\x00')
    q.Query.select;
  Buffer.add_char b '\x01';
  List.iter
    (fun p ->
      Buffer.add_char b (match p with Query.Point _ -> 'P' | Query.Range _ -> 'R');
      Buffer.add_string b (Query.pred_attr p);
      Buffer.add_char b '\x00')
    q.Query.where;
  Buffer.contents b

let to_memo (p : plan) (q : Query.t) =
  { m_leaves = p.leaves;
    m_joins = p.joins;
    (* Record, per where-position, the home label (or None for a dropped
       predicate) so the plan can be rebuilt around the actual constants
       of a same-shape query. *)
    m_pred_labels =
      List.map (fun p0 -> List.assoc_opt p0 p.pred_home) q.Query.where;
    m_proj_home = p.proj_home }

let of_memo (m : memo_plan) (q : Query.t) =
  { leaves = m.m_leaves;
    joins = m.m_joins;
    pred_home =
      List.concat
        (List.map2
           (fun p -> function Some l -> [ (p, l) ] | None -> [])
           q.Query.where m.m_pred_labels);
    proj_home = m.m_proj_home }

(* Plan once, uncached. Returns the full decision payload minus cache
   status; [d_enumerated] counts candidates priced by THIS call. *)
let plan_fresh handle rep q =
  match check_items_coverable rep q with
  | Error e -> Error e
  | Ok () ->
    let tbl = leaf_table rep in
    (match handle with
     | Greedy ->
       Result.map
         (fun chosen -> (assemble ~tbl q chosen, None, [], [], 1))
         (greedy rep q)
     | Priced p ->
       Result.map
         (fun (pl, c, rej, notes, n) -> (pl, Some c, rej, notes, n))
         (enumerate ~tbl ~price:p.price ~max_cover:p.max_cover
            ~max_orders:p.max_orders ~explore_orders:true rep q)
     | Adhoc f ->
       Result.map
         (fun (pl, c, rej, notes, n) -> (pl, Some c, rej, notes, n))
         (enumerate ~tbl ~price:f ~max_cover:6 ~max_orders:1
            ~explore_orders:false rep q))

let mode_tag = function
  | Greedy -> "G"
  | Priced p -> Printf.sprintf "C%d" p.p_id
  | Adhoc _ -> "A"

let decide ?(handle = Greedy) rep q =
  let finish ~cache ~enumerated result =
    (match cache with
     | `Hit -> Metrics.incr m_cache_hit
     | `Miss ->
       Metrics.incr m_cache_miss;
       if enumerated > 0 then Metrics.add m_enumerated enumerated);
    Result.map
      (fun (pl, est, rej, notes) ->
        { d_plan = pl;
          d_estimate = est;
          d_rejected = rej;
          d_notes = notes;
          d_enumerated = enumerated;
          d_cache = cache;
          d_selector = selector_name handle })
      result
  in
  match handle with
  | Adhoc _ ->
    (* Ad-hoc cost functions are arbitrary closures (and may inspect the
       constants through pred_home), so they never memoize. *)
    let result = plan_fresh handle rep q in
    let enumerated =
      match result with Ok (_, _, _, _, n) -> n | Error _ -> 0
    in
    finish ~cache:`Miss ~enumerated
      (Result.map
         (fun (pl, est, rej, notes, _) -> (pl, est, rej, notes))
         result)
  | Greedy | Priced _ ->
    let stamp =
      match handle with Priced p -> Some (p.stamp ()) | _ -> None
    in
    let st = Domain.DLS.get memo_key in
    let key, hit =
      Mutex.protect st.lock (fun () ->
          let key = (mode_tag handle, rep_digest st rep, shape_key q) in
          (key, Hashtbl.find_opt st.plans key))
    in
    (match hit with
     | Some e when e.e_stamp = stamp ->
       finish ~cache:`Hit ~enumerated:0
         (Result.map
            (fun (m, est, rej, notes) -> (of_memo m q, est, rej, notes))
            e.e_result)
     | _ ->
       (* Planning itself runs unlocked; a concurrent same-shape miss
          just plans twice and the second replace wins harmlessly. *)
       let result = plan_fresh handle rep q in
       let enumerated =
         match result with Ok (_, _, _, _, n) -> n | Error _ -> 0
       in
       Mutex.protect st.lock (fun () ->
           if Hashtbl.length st.plans >= max_plan_entries then
             Hashtbl.reset st.plans;
           Hashtbl.replace st.plans key
             { e_result =
                 Result.map
                   (fun (pl, est, rej, notes, _) -> (to_memo pl q, est, rej, notes))
                   result;
               e_stamp = stamp });
       finish ~cache:`Miss ~enumerated
         (Result.map
            (fun (pl, est, rej, notes, _) -> (pl, est, rej, notes))
            result))

let plan ?handle rep q = Result.map (fun d -> d.d_plan) (decide ?handle rep q)

(* Shadows the internal greedy-cover function on purpose: from outside,
   [Planner.greedy] is the default handle. *)
let greedy = Greedy

let single_leaf p = List.length p.leaves <= 1

let pp fmt p =
  Format.fprintf fmt "leaves [%s], %d joins" (String.concat "; " p.leaves) p.joins

(** QUERYMATCHING (Algorithm 1, line 9): pick the sub-relations that
    answer a query.

    If one leaf hosts every attribute the query touches {e and} can
    evaluate every predicate on ciphertexts, the query runs leaf-locally
    with zero oblivious joins — the case SNF normalization tries to make
    common (maximal permissiveness). Otherwise the planner chooses a cover
    of leaves; reconstructing across [k] leaves costs [k - 1] oblivious
    joins, the unit of the paper's query-cost metric.

    Two selectors are provided: a greedy cover (largest uncovered
    contribution first, ties to narrower leaves), and an exhaustive
    minimal-cost search over covers of bounded size implementing the
    data-aware sub-relation matching of §V-C (several covers may exist;
    cost decides). *)


type plan = {
  leaves : string list;                  (** labels, join order *)
  joins : int;                           (** = max 0 (|leaves| - 1) *)
  pred_home : (Query.pred * string) list; (** evaluating leaf per predicate *)
  proj_home : (string * string) list;     (** (attribute, leaf) per projection *)
}

val supports : Snf_crypto.Scheme.kind -> Query.pred -> bool
(** Can a column under this scheme evaluate the predicate server-side? *)

val plan :
  ?selector:[ `Greedy | `Optimal of (plan -> float) ] ->
  Snf_core.Partition.t -> Query.t -> (plan, string) result
(** [`Greedy] (default) minimizes leaf count heuristically; [`Optimal f]
    enumerates covers (capped at 6 leaves) and returns the [f]-cheapest.
    Errors when some attribute is stored nowhere, or some predicate has no
    leaf whose copy of the attribute supports it.

    Internally, label lookups go through a per-call label->leaf hash table
    (no O(leaves) scan per item), and [`Greedy] results are memoized per
    (representation digest, query shape) — the shape being the projection
    list plus each predicate's attribute and point/range kind; searched
    constants do not influence the cover. The memo lives in domain-local
    storage, so concurrent planning from [Parallel] workers never races,
    and memoized answers are bit-identical to uncached planning.
    [`Optimal] never memoizes (its cost function is an arbitrary
    closure). *)

val single_leaf : plan -> bool

val pp : Format.formatter -> plan -> unit

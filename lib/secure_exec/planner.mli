(** QUERYMATCHING (Algorithm 1, line 9): pick the sub-relations that
    answer a query.

    If one leaf hosts every attribute the query touches {e and} can
    evaluate every predicate on ciphertexts, the query runs leaf-locally
    with zero oblivious joins — the case SNF normalization tries to make
    common (maximal permissiveness). Otherwise the planner chooses a cover
    of leaves; reconstructing across [k] leaves costs [k - 1] oblivious
    joins, the unit of the paper's query-cost metric.

    Planning goes through a {!handle}: the greedy cover heuristic
    (largest uncovered contribution first, ties to narrower leaves), a
    statistics-driven cost-based optimizer ({!cost_based} — candidate
    covers {e and} join orders, priced by a caller-supplied model,
    cached per query shape with epoch/stats-stamped invalidation), or a
    legacy ad-hoc exhaustive search ({!optimal}). Every call resolves to
    a {!decision} that records what was enumerated, what was rejected
    and why — the payload [snf_cli explain] renders. *)

type plan = {
  leaves : string list;                  (** labels, join order *)
  joins : int;                           (** = max 0 (|leaves| - 1) *)
  pred_home : (Query.pred * string) list; (** evaluating leaf per predicate *)
  proj_home : (string * string) list;     (** (attribute, leaf) per projection *)
}

val supports : Snf_crypto.Scheme.kind -> Query.pred -> bool
(** Can a column under this scheme evaluate the predicate server-side? *)

(** A candidate the optimizer priced but did not choose. *)
type candidate = { cand_leaves : string list; cand_cost : float }

(** Typed planner diagnostics: when enumeration was truncated, the
    decision says so instead of silently returning a possibly
    non-minimal answer (EXPLAIN renders them). *)
type note =
  | Truncated_covers of { bound : int; relevant : int }
      (** more leaves were relevant than the subset bound explores *)
  | Truncated_orders of { bound : int; cover_size : int }
      (** some cover had more join orders than the budget prices *)

val note_to_string : note -> string

type decision = {
  d_plan : plan;                     (** the chosen plan *)
  d_estimate : float option;         (** its modeled cost; [None] under greedy *)
  d_rejected : candidate list;       (** cheapest-first, capped at 8 *)
  d_notes : note list;
  d_enumerated : int;                (** candidates priced by THIS call (0 on a hit) *)
  d_cache : [ `Hit | `Miss ];
  d_selector : string;               (** "greedy" / the cost handle's label / "optimal" *)
}

type handle

val greedy : handle
(** The default: greedy cover, no pricing, memoized per
    (representation digest, query shape). *)

val optimal : (plan -> float) -> handle
(** Legacy exhaustive search: price every feasible cover of at most 6
    leaves (in enumeration order, no join-order exploration) with an
    arbitrary closure. Never cached — the closure may inspect searched
    constants. Emits {!Truncated_covers} when more than 6 leaves were
    relevant. *)

val cost_based :
  ?max_cover:int ->
  ?max_orders:int ->
  ?label:string ->
  price:(plan -> float) ->
  stamp:(unit -> int * int) ->
  unit ->
  handle
(** A cost-based optimizer handle. [price] must be a pure function of
    the plan's {e shape} (leaves, homes, predicate kinds) and of the
    statistics behind it — never of searched constants — because its
    decisions are cached per (representation digest, query shape) and
    replayed for same-shape queries. [stamp] is read at every planning
    call and stored with each cache entry: when it changes (key-epoch
    rotation, statistics drift past threshold), the entry is stale and
    the next call re-plans. Covers are enumerated up to [max_cover]
    leaves (default 6) and each cover's join orders up to [max_orders]
    permutations (default 6, i.e. covers of ≤ 3 leaves are fully
    ordered); truncation is recorded as typed {!note}s, never silent. *)

val selector_name : handle -> string

val decide :
  ?handle:handle -> Snf_core.Partition.t -> Query.t -> (decision, string) result
(** Plan one query. Errors when some attribute is stored nowhere, or
    some predicate has no leaf whose copy of the attribute supports it.

    Caching: greedy and cost-based decisions are memoized per
    (handle, representation digest, query shape) — the shape being the
    projection list plus each predicate's attribute and point/range
    kind; searched constants do not influence the cover. The memo lives
    in domain-local storage, so concurrent planning from [Parallel]
    workers never races, and memoized answers are bit-identical to
    uncached planning. Every call moves exactly one of the
    [plan.cache.hit] / [plan.cache.miss] counters (ad-hoc {!optimal}
    handles always miss), and misses add the candidates they priced to
    [plan.candidates.enumerated]. *)

val plan :
  ?handle:handle -> Snf_core.Partition.t -> Query.t -> (plan, string) result
(** {!decide}'s plan, for callers that don't need the diagnostics. Same
    caching and counter movement. *)

val single_leaf : plan -> bool

val pp : Format.formatter -> plan -> unit

module Metrics = Snf_obs.Metrics
module Prng = Snf_crypto.Prng
module Paillier = Snf_crypto.Paillier

(* Client-side accounting of the boundary traffic: the serialized bytes
   crossing the connection ARE the access-pattern leakage, so they are
   counted where the client observes them — globally and per phase. The
   counters are domain-sharded ([Metrics]), so parallel filter fan-out
   still yields deterministic totals. *)
let m_requests = Metrics.counter "exec.wire.requests"
let m_bytes_up = Metrics.counter "exec.wire.bytes_up"
let m_bytes_down = Metrics.counter "exec.wire.bytes_down"

type phase_counters = {
  p_requests : Metrics.counter;
  p_bytes_up : Metrics.counter;
  p_bytes_down : Metrics.counter;
}

let phase_counters name =
  { p_requests = Metrics.counter (Printf.sprintf "exec.wire.%s.requests" name);
    p_bytes_up = Metrics.counter (Printf.sprintf "exec.wire.%s.bytes_up" name);
    p_bytes_down = Metrics.counter (Printf.sprintf "exec.wire.%s.bytes_down" name) }

let ph_admin = phase_counters "admin"
let ph_probe = phase_counters "probe"
let ph_filter = phase_counters "filter"
let ph_fetch = phase_counters "fetch"
let ph_oram = phase_counters "oram"
let ph_phe = phase_counters "phe"

(* --- the server side ------------------------------------------------------ *)

type store_view = {
  describe : unit -> string * (string * int) list;
  check_shape : unit -> unit;
  install : string -> unit;
  leaf : string -> Enc_relation.enc_leaf;
  eq_index : leaf:string -> attr:string -> (string, int list) Hashtbl.t option;
  paillier : unit -> Paillier.public_key;
}

module type BACKEND = sig
  type t

  val name : string
  val view : t -> store_view
  val close : t -> unit
end

(* PHE aggregation reuses [Enc_relation]'s server-side kernels, which take
   a whole store; give them a single-leaf shim sharing nothing mutable. *)
let singleton_store view l =
  { Enc_relation.relation_name = fst (view.describe ());
    leaves = [ l ];
    paillier_public = view.paillier ();
    index_cache = Hashtbl.create 1 }

(* Mirrors the pre-split [Executor.server_filter]: pure ciphertext work,
   same scan accounting ([row_count] cells per scan op). *)
let eval_filter (l : Enc_relation.enc_leaf) ops =
  let n = l.Enc_relation.row_count in
  let mask = Array.make n true in
  let scanned = ref 0 in
  let apply_slots slots =
    let keep = Array.make n false in
    List.iter (fun s -> keep.(s) <- true) slots;
    Array.iteri (fun i m -> if m && not keep.(i) then mask.(i) <- false) mask
  in
  let scan col test =
    scanned := !scanned + n;
    Array.iteri
      (fun i cell -> if mask.(i) && not (test cell) then mask.(i) <- false)
      col.Enc_relation.cells
  in
  List.iter
    (function
      | Wire.F_slots slots -> apply_slots slots
      | Wire.F_eq (attr, tok) ->
        scan (Enc_relation.column l attr) (Enc_relation.cell_matches_eq tok)
      | Wire.F_range (attr, tok) ->
        scan (Enc_relation.column l attr) (Enc_relation.cell_in_range tok))
    ops;
  (mask, !scanned)

let dispatch view orams (req : Wire.request) : Wire.response =
  match req with
  | Wire.Describe ->
    let relation_name, leaves = view.describe () in
    Wire.R_described { relation_name; leaves }
  | Wire.Check_shape ->
    view.check_shape ();
    Wire.R_unit
  | Wire.Install image ->
    view.install image;
    Wire.R_unit
  | Wire.Index_probe { leaf; attr; key } -> (
    (* The index lookup (and its lazy build / cache-hit accounting) runs
       unconditionally, exactly like the pre-split executor did, so the
       exec.eq_index.* counters are backend- and key-independent. *)
    let idx = view.eq_index ~leaf ~attr in
    match (idx, key) with
    | Some idx, Some key ->
      Wire.R_slots (Some (Option.value (Hashtbl.find_opt idx key) ~default:[]))
    | _ -> Wire.R_slots None)
  | Wire.Filter { leaf; ops } ->
    let mask, scanned = eval_filter (view.leaf leaf) ops in
    Wire.R_mask { mask; scanned }
  | Wire.Fetch_rows { leaf; attrs; slots } ->
    let l = view.leaf leaf in
    let cols =
      List.map
        (fun attr ->
          let col = Enc_relation.column l attr in
          Array.of_list (List.map (fun s -> col.Enc_relation.cells.(s)) slots))
        attrs
    in
    Wire.R_rows (Array.of_list cols)
  | Wire.Fetch_tids { leaf } -> Wire.R_tids (view.leaf leaf).Enc_relation.tids
  | Wire.Oram_init { leaf; seed; block_size; blocks } ->
    let oram =
      Path_oram.create ~num_blocks:(max (Array.length blocks) 1) ~block_size
        (Prng.create seed)
    in
    Array.iteri (fun i b -> Path_oram.write oram i b) blocks;
    Hashtbl.replace orams leaf oram;
    Wire.R_oram { block = None; touches = Path_oram.bucket_touches oram }
  | Wire.Oram_read { leaf; slot } -> (
    match Hashtbl.find_opt orams leaf with
    | None -> Wire.R_error { not_found = true; msg = "no ORAM session for this leaf" }
    | Some oram ->
      let block = Path_oram.read oram slot in
      Wire.R_oram { block = Some block; touches = Path_oram.bucket_touches oram })
  | Wire.Phe_sum { leaf; attr } ->
    let l = view.leaf leaf in
    Wire.R_nat (Enc_relation.phe_sum (singleton_store view l) l attr)
  | Wire.Group_sum { leaf; group_by; sum } ->
    let l = view.leaf leaf in
    Wire.R_groups (Enc_relation.phe_group_sum (singleton_store view l) l ~group_by ~sum)
  | Wire.Q_batch { queries } ->
    (* One pass over the touched leaves: each distinct leaf is loaded
       from the backend exactly once for the whole batch (one page-in on
       the disk backend instead of one per query), then every query's ops
       are evaluated against that single in-memory copy. Scan accounting
       is per query and unchanged, so a batch reports the same scanned
       totals K singles would. *)
    let loaded : (string, Enc_relation.enc_leaf) Hashtbl.t = Hashtbl.create 8 in
    let leaf_once label =
      match Hashtbl.find_opt loaded label with
      | Some l -> l
      | None ->
        let l = view.leaf label in
        Hashtbl.add loaded label l;
        l
    in
    Wire.R_batch
      { results =
          List.map
            (List.map (fun (label, ops) -> eval_filter (leaf_once label) ops))
            queries }

let serve view orams request_bytes =
  let resp =
    match dispatch view orams (Wire.request_of_string request_bytes) with
    | resp -> resp
    | exception Integrity.Corruption c -> Wire.R_corrupt c
    | exception Not_found ->
      Wire.R_error { not_found = true; msg = "unknown leaf or attribute" }
    | exception Invalid_argument msg -> Wire.R_error { not_found = false; msg }
  in
  Wire.response_to_string resp

(* --- the connection -------------------------------------------------------- *)

type wire_stats = { requests : int; bytes_up : int; bytes_down : int }

type conn = {
  backend_name : string;
  handle : string -> string;
  close_backend : unit -> unit;
  c_requests : int Atomic.t;
  c_bytes_up : int Atomic.t;
  c_bytes_down : int Atomic.t;
  (* Decoded-tid memo: the server is still asked on every call (the
     traffic is real and counted), but when the response bytes are
     unchanged the previously decoded array is returned {e physically}
     unchanged — which is what lets [Enc_relation.decrypt_tids_cached]
     recognize a stable leaf across queries on a connection. *)
  tid_memo : (string, string array) Hashtbl.t;
  memo_mutex : Mutex.t;
}

let connect (type a) (module B : BACKEND with type t = a) (backend : a) =
  let view = B.view backend in
  let orams = Hashtbl.create 4 in
  { backend_name = B.name;
    handle = serve view orams;
    close_backend = (fun () -> B.close backend);
    c_requests = Atomic.make 0;
    c_bytes_up = Atomic.make 0;
    c_bytes_down = Atomic.make 0;
    tid_memo = Hashtbl.create 4;
    memo_mutex = Mutex.create () }

let backend_name conn = conn.backend_name
let close conn = conn.close_backend ()

let stats conn =
  { requests = Atomic.get conn.c_requests;
    bytes_up = Atomic.get conn.c_bytes_up;
    bytes_down = Atomic.get conn.c_bytes_down }

(* One round trip: serialize, count, send, count, decode, and re-raise
   server-reported failures as the typed exceptions the pre-split code
   threw from the same situations. *)
let call conn ph req =
  let up = Wire.request_to_string req in
  let down = conn.handle up in
  Atomic.incr conn.c_requests;
  ignore (Atomic.fetch_and_add conn.c_bytes_up (String.length up));
  ignore (Atomic.fetch_and_add conn.c_bytes_down (String.length down));
  Metrics.incr m_requests;
  Metrics.add m_bytes_up (String.length up);
  Metrics.add m_bytes_down (String.length down);
  Metrics.incr ph.p_requests;
  Metrics.add ph.p_bytes_up (String.length up);
  Metrics.add ph.p_bytes_down (String.length down);
  match Wire.response_of_string down with
  | Wire.R_corrupt c -> raise (Integrity.Corruption c)
  | Wire.R_error { not_found = true; _ } -> raise Not_found
  | Wire.R_error { not_found = false; msg } -> invalid_arg msg
  | resp -> resp

let protocol_error what = invalid_arg ("Server_api: unexpected response to " ^ what)

let describe conn =
  match call conn ph_admin Wire.Describe with
  | Wire.R_described { relation_name; leaves } -> (relation_name, leaves)
  | _ -> protocol_error "Describe"

let check_shape conn =
  match call conn ph_admin Wire.Check_shape with
  | Wire.R_unit -> ()
  | _ -> protocol_error "Check_shape"

let install conn image =
  match call conn ph_admin (Wire.Install image) with
  | Wire.R_unit -> ()
  | _ -> protocol_error "Install"

let index_probe conn ~leaf ~attr ~key =
  match call conn ph_probe (Wire.Index_probe { leaf; attr; key }) with
  | Wire.R_slots slots -> slots
  | _ -> protocol_error "Index_probe"

let filter conn ~leaf ~ops =
  match call conn ph_filter (Wire.Filter { leaf; ops }) with
  | Wire.R_mask { mask; scanned } -> (mask, scanned)
  | _ -> protocol_error "Filter"

let filter_batch conn ~queries =
  match call conn ph_filter (Wire.Q_batch { queries }) with
  | Wire.R_batch { results } ->
    if List.length results <> List.length queries then
      protocol_error "Q_batch (result count)"
    else results
  | _ -> protocol_error "Q_batch"

let fetch_rows conn ~leaf ~attrs ~slots =
  match call conn ph_fetch (Wire.Fetch_rows { leaf; attrs; slots }) with
  | Wire.R_rows rows -> rows
  | _ -> protocol_error "Fetch_rows"

let fetch_tids conn ~leaf =
  match call conn ph_fetch (Wire.Fetch_tids { leaf }) with
  | Wire.R_tids tids ->
    Mutex.protect conn.memo_mutex (fun () ->
        match Hashtbl.find_opt conn.tid_memo leaf with
        | Some memo when memo = tids -> memo
        | _ ->
          Hashtbl.replace conn.tid_memo leaf tids;
          tids)
  | _ -> protocol_error "Fetch_tids"

let oram_init conn ~leaf ~seed ~block_size ~blocks =
  match call conn ph_oram (Wire.Oram_init { leaf; seed; block_size; blocks }) with
  | Wire.R_oram { block = None; touches } -> touches
  | _ -> protocol_error "Oram_init"

let oram_read conn ~leaf ~slot =
  match call conn ph_oram (Wire.Oram_read { leaf; slot }) with
  | Wire.R_oram { block = Some block; touches } -> (block, touches)
  | _ -> protocol_error "Oram_read"

let phe_sum conn ~leaf ~attr =
  match call conn ph_phe (Wire.Phe_sum { leaf; attr }) with
  | Wire.R_nat n -> n
  | _ -> protocol_error "Phe_sum"

let group_sum conn ~leaf ~group_by ~sum =
  match call conn ph_phe (Wire.Group_sum { leaf; group_by; sum }) with
  | Wire.R_groups groups -> groups
  | _ -> protocol_error "Group_sum"

module Metrics = Snf_obs.Metrics
module Wiretrace = Snf_obs.Wiretrace
module Leakage = Snf_obs.Leakage
module Prng = Snf_crypto.Prng
module Paillier = Snf_crypto.Paillier

(* Client-side accounting of the boundary traffic: the serialized bytes
   crossing the connection ARE the access-pattern leakage, so they are
   counted where the client observes them — globally and per phase. The
   counters are domain-sharded ([Metrics]), so parallel filter fan-out
   still yields deterministic totals. *)
let m_requests = Metrics.counter "exec.wire.requests"
let m_bytes_up = Metrics.counter "exec.wire.bytes_up"
let m_bytes_down = Metrics.counter "exec.wire.bytes_down"

type phase_counters = {
  p_name : string;
  p_requests : Metrics.counter;
  p_bytes_up : Metrics.counter;
  p_bytes_down : Metrics.counter;
}

let phase_counters name =
  { p_name = name;
    p_requests = Metrics.counter (Printf.sprintf "exec.wire.%s.requests" name);
    p_bytes_up = Metrics.counter (Printf.sprintf "exec.wire.%s.bytes_up" name);
    p_bytes_down = Metrics.counter (Printf.sprintf "exec.wire.%s.bytes_down" name) }

let ph_admin = phase_counters "admin"
let ph_probe = phase_counters "probe"
let ph_filter = phase_counters "filter"
let ph_fetch = phase_counters "fetch"
let ph_oram = phase_counters "oram"
let ph_phe = phase_counters "phe"

(* --- the server side ------------------------------------------------------ *)

type store_view = {
  describe : unit -> string * (string * int) list;
  check_shape : unit -> unit;
  install : string -> unit;
  leaf : string -> Enc_relation.enc_leaf;
  eq_index : leaf:string -> attr:string -> (string, int list) Hashtbl.t option;
  paillier : unit -> Paillier.public_key;
}

module type BACKEND = sig
  type t

  val name : string
  val view : t -> store_view
  val close : t -> unit
end

(* PHE aggregation reuses [Enc_relation]'s server-side kernels, which take
   a whole store; give them a single-leaf shim sharing nothing mutable. *)
let singleton_store view l =
  { Enc_relation.relation_name = fst (view.describe ());
    leaves = [ l ];
    paillier_public = view.paillier ();
    index_cache = Hashtbl.create 1 }

(* Mirrors the pre-split [Executor.server_filter]: pure ciphertext work,
   same scan accounting ([row_count] cells per scan op). *)
let eval_filter (l : Enc_relation.enc_leaf) ops =
  let n = l.Enc_relation.row_count in
  let mask = Array.make n true in
  let scanned = ref 0 in
  let apply_slots slots =
    let keep = Array.make n false in
    List.iter (fun s -> keep.(s) <- true) slots;
    Array.iteri (fun i m -> if m && not keep.(i) then mask.(i) <- false) mask
  in
  let scan col test =
    scanned := !scanned + n;
    Array.iteri
      (fun i cell -> if mask.(i) && not (test cell) then mask.(i) <- false)
      col.Enc_relation.cells
  in
  List.iter
    (function
      | Wire.F_slots slots -> apply_slots slots
      | Wire.F_eq (attr, tok) ->
        scan (Enc_relation.column l attr) (Enc_relation.cell_matches_eq tok)
      | Wire.F_range (attr, tok) ->
        scan (Enc_relation.column l attr) (Enc_relation.cell_in_range tok))
    ops;
  (mask, !scanned)

(* Fingerprint used both for SNFT token summaries and for the value-class
   digests of [Q_store_stats]: stable 16-hex identity of bytes the server
   already holds, never the bytes themselves. *)
let fp s = String.sub (Digest.to_hex (Digest.string s)) 0 16

let dispatch view orams (req : Wire.request) : Wire.response =
  match req with
  | Wire.Describe ->
    let relation_name, leaves = view.describe () in
    Wire.R_described { relation_name; leaves }
  | Wire.Check_shape ->
    view.check_shape ();
    Wire.R_unit
  | Wire.Install image ->
    view.install image;
    Wire.R_unit
  | Wire.Index_probe { leaf; attr; key } -> (
    (* The index lookup (and its lazy build / cache-hit accounting) runs
       unconditionally, exactly like the pre-split executor did, so the
       exec.eq_index.* counters are backend- and key-independent. *)
    let idx = view.eq_index ~leaf ~attr in
    match (idx, key) with
    | Some idx, Some key ->
      Wire.R_slots (Some (Option.value (Hashtbl.find_opt idx key) ~default:[]))
    | _ -> Wire.R_slots None)
  | Wire.Filter { leaf; ops } ->
    let mask, scanned = eval_filter (view.leaf leaf) ops in
    Wire.R_mask { mask; scanned }
  | Wire.Fetch_rows { leaf; attrs; slots } ->
    let l = view.leaf leaf in
    let cols =
      List.map
        (fun attr ->
          let col = Enc_relation.column l attr in
          Array.of_list (List.map (fun s -> col.Enc_relation.cells.(s)) slots))
        attrs
    in
    Wire.R_rows (Array.of_list cols)
  | Wire.Fetch_tids { leaf } -> Wire.R_tids (view.leaf leaf).Enc_relation.tids
  | Wire.Oram_init { leaf; seed; block_size; blocks } ->
    let oram =
      Path_oram.create ~num_blocks:(max (Array.length blocks) 1) ~block_size
        (Prng.create seed)
    in
    Array.iteri (fun i b -> Path_oram.write oram i b) blocks;
    Hashtbl.replace orams leaf oram;
    Wire.R_oram { block = None; touches = Path_oram.bucket_touches oram }
  | Wire.Oram_read { leaf; slot } -> (
    match Hashtbl.find_opt orams leaf with
    | None -> Wire.R_error { not_found = true; msg = "no ORAM session for this leaf" }
    | Some oram ->
      let block = Path_oram.read oram slot in
      Wire.R_oram { block = Some block; touches = Path_oram.bucket_touches oram })
  | Wire.Phe_sum { leaf; attr } ->
    let l = view.leaf leaf in
    Wire.R_nat (Enc_relation.phe_sum (singleton_store view l) l attr)
  | Wire.Group_sum { leaf; group_by; sum } ->
    let l = view.leaf leaf in
    Wire.R_groups (Enc_relation.phe_group_sum (singleton_store view l) l ~group_by ~sum)
  | Wire.Q_batch { queries } ->
    (* One pass over the touched leaves: each distinct leaf is loaded
       from the backend exactly once for the whole batch (one page-in on
       the disk backend instead of one per query), then every query's ops
       are evaluated against that single in-memory copy. Scan accounting
       is per query and unchanged, so a batch reports the same scanned
       totals K singles would. *)
    let loaded : (string, Enc_relation.enc_leaf) Hashtbl.t = Hashtbl.create 8 in
    let leaf_once label =
      match Hashtbl.find_opt loaded label with
      | Some l -> l
      | None ->
        let l = view.leaf label in
        Hashtbl.add loaded label l;
        l
    in
    Wire.R_batch
      { results =
          List.map
            (List.map (fun (label, ops) -> eval_filter (leaf_once label) ops))
            queries }
  | Wire.Q_store_stats ->
    (* Planner statistics, computed from nothing but what the store image
       already reveals: per-leaf row counts and, for columns with a
       canonical ciphertext, the equality-index class sizes keyed by a
       digest of the canonical key. The index build/hit accounting runs
       through the same [view.eq_index] path as probes, so stats
       collection is backend-independent. *)
    let _, leaves = view.describe () in
    let stats =
      List.map
        (fun (label, rows) ->
          let l = view.leaf label in
          let attrs =
            List.filter_map
              (fun (col : Enc_relation.enc_column) ->
                match view.eq_index ~leaf:label ~attr:col.Enc_relation.attr with
                | None -> None
                | Some idx ->
                  let classes =
                    Hashtbl.fold
                      (fun key slots acc -> (fp key, List.length slots) :: acc)
                      idx []
                    |> List.sort compare
                  in
                  Some { Wire.a_attr = col.Enc_relation.attr; a_classes = classes })
              l.Enc_relation.columns
          in
          { Wire.s_label = label; s_rows = rows; s_attrs = attrs })
        leaves
    in
    Wire.R_store_stats { leaves = stats }

let serve view orams request_bytes =
  let resp =
    match dispatch view orams (Wire.request_of_string request_bytes) with
    | resp -> resp
    | exception Integrity.Corruption c -> Wire.R_corrupt c
    | exception Not_found ->
      Wire.R_error { not_found = true; msg = "unknown leaf or attribute" }
    | exception Invalid_argument msg -> Wire.R_error { not_found = false; msg }
  in
  Wire.response_to_string resp

let session_handler view =
  let orams = Hashtbl.create 4 in
  serve view orams

(* --- the connection -------------------------------------------------------- *)

exception Busy

type wire_stats = { requests : int; bytes_up : int; bytes_down : int }

type conn = {
  backend_name : string;
  handle : string -> string;
  close_backend : unit -> unit;
  c_requests : int Atomic.t;
  c_bytes_up : int Atomic.t;
  c_bytes_down : int Atomic.t;
  (* Decoded-tid memo: the server is still asked on every call (the
     traffic is real and counted), but when the response bytes are
     unchanged the previously decoded array is returned {e physically}
     unchanged — which is what lets [Enc_relation.decrypt_tids_cached]
     recognize a stable leaf across queries on a connection. *)
  tid_memo : (string, string array) Hashtbl.t;
  memo_mutex : Mutex.t;
}

let connect_handler ~name ~handle ~close =
  { backend_name = name;
    handle;
    close_backend = close;
    c_requests = Atomic.make 0;
    c_bytes_up = Atomic.make 0;
    c_bytes_down = Atomic.make 0;
    tid_memo = Hashtbl.create 4;
    memo_mutex = Mutex.create () }

let connect (type a) (module B : BACKEND with type t = a) (backend : a) =
  connect_handler ~name:B.name
    ~handle:(session_handler (B.view backend))
    ~close:(fun () -> B.close backend)

let backend_name conn = conn.backend_name
let close conn = conn.close_backend ()

let stats conn =
  { requests = Atomic.get conn.c_requests;
    bytes_up = Atomic.get conn.c_bytes_up;
    bytes_down = Atomic.get conn.c_bytes_down }

(* --- SNFT summaries ---------------------------------------------------------
   What the recorder logs for each message: only server-visible facts.
   Ciphertext tokens are fingerprinted (MD5 of their canonical [Wire]
   bytes) — the trace carries token {e identity}, never token bytes;
   order-revealing ordinals are logged as-is because their numeric order
   IS what the server sees. The ORAM read slot is withheld: it models
   the client-held position map, whose output the simulator's in-process
   ORAM ships in the clear only as an artifact (the raw bytes still
   count; the access pattern is the [touches] in the response). *)

let fp_op op = fp (Wire.filter_op_to_string op)
let csv_int l = String.concat "," (List.map string_of_int l)

let op_desc op =
  match op with
  | Wire.F_slots slots -> Leakage.desc_slots slots
  | Wire.F_eq (attr, tok) ->
    let scheme, key =
      match tok with
      | Enc_relation.Eq_plain _ -> ("plain", fp_op op)
      | Enc_relation.Eq_det _ -> ("det", fp_op op)
      | Enc_relation.Eq_ord o -> ("ord", string_of_int o)
      | Enc_relation.Eq_ore _ -> ("ore", fp_op op)
    in
    Leakage.desc_token ~kind:`Eq ~scheme ~key ~attr
  | Wire.F_range (attr, tok) ->
    let scheme, key =
      match tok with
      | Enc_relation.Rng_plain _ -> ("plain", fp_op op)
      | Enc_relation.Rng_ord (lo, hi) -> ("ord", Printf.sprintf "%d..%d" lo hi)
      | Enc_relation.Rng_ore _ -> ("ore", fp_op op)
    in
    Leakage.desc_token ~kind:`Range ~scheme ~key ~attr

let summarize_request (req : Wire.request) =
  match req with
  | Wire.Describe | Wire.Check_shape -> []
  | Wire.Install image -> [ ("size", string_of_int (String.length image)) ]
  | Wire.Index_probe { leaf; attr; key } ->
    [ ("leaf", leaf);
      ("attr", attr);
      ("key", match key with None -> "none" | Some k -> fp k) ]
  | Wire.Filter { leaf; ops } ->
    ("leaf", leaf) :: List.map (fun o -> ("op", op_desc o)) ops
  | Wire.Fetch_rows { leaf; attrs; slots } ->
    [ ("leaf", leaf); ("attrs", String.concat "," attrs); ("slots", csv_int slots) ]
  | Wire.Fetch_tids { leaf } -> [ ("leaf", leaf) ]
  | Wire.Oram_init { leaf; block_size; blocks; _ } ->
    [ ("leaf", leaf);
      ("blocks", string_of_int (Array.length blocks));
      ("block_size", string_of_int block_size) ]
  | Wire.Oram_read { leaf; _ } -> [ ("leaf", leaf) ]
  | Wire.Phe_sum { leaf; attr } -> [ ("leaf", leaf); ("attr", attr) ]
  | Wire.Group_sum { leaf; group_by; sum } ->
    [ ("leaf", leaf); ("group_by", group_by); ("sum", sum) ]
  | Wire.Q_batch { queries } ->
    ("k", string_of_int (List.length queries))
    :: List.concat
         (List.mapi
            (fun i q ->
              ("q", string_of_int i)
              :: List.concat_map
                   (fun (leaf, ops) ->
                     ("leaf", leaf) :: List.map (fun o -> ("op", op_desc o)) ops)
                   q)
            queries)
  | Wire.Q_store_stats -> []

let matched mask = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask

let summarize_response (resp : Wire.response) =
  match resp with
  | Wire.R_unit | Wire.R_nat _ -> []
  | Wire.R_described { relation_name; leaves } ->
    [ ("relation", relation_name);
      ( "leaves",
        String.concat ","
          (List.map (fun (l, n) -> Printf.sprintf "%s=%d" l n) leaves) ) ]
  | Wire.R_slots None -> [ ("slots", "none") ]
  | Wire.R_slots (Some slots) ->
    [ ("n", string_of_int (List.length slots)); ("slots", csv_int slots) ]
  | Wire.R_mask { mask; scanned } ->
    [ ("matched", string_of_int (matched mask));
      ("scanned", string_of_int scanned);
      ("mask", Leakage.mask_to_hex mask) ]
  | Wire.R_rows cols ->
    [ ("cols", string_of_int (Array.length cols));
      ("rows", string_of_int (if Array.length cols = 0 then 0 else Array.length cols.(0)))
    ]
  | Wire.R_tids tids -> [ ("n", string_of_int (Array.length tids)) ]
  | Wire.R_oram { touches; _ } -> [ ("touches", string_of_int touches) ]
  | Wire.R_groups groups -> [ ("groups", string_of_int (List.length groups)) ]
  | Wire.R_error { not_found; _ } ->
    [ ("error", if not_found then "not_found" else "invalid") ]
  | Wire.R_corrupt c -> [ ("error", "corrupt"); ("where", c.Integrity.where) ]
  | Wire.R_batch { results } ->
    List.concat
      (List.mapi
         (fun i rs ->
           ("q", string_of_int i)
           :: List.map
                (fun (mask, scanned) ->
                  ( "mask",
                    Printf.sprintf "%d:%d:%s" (matched mask) scanned
                      (Leakage.mask_to_hex mask) ))
                rs)
         results)
  | Wire.R_busy -> [ ("error", "busy") ]
  | Wire.R_store_stats { leaves } ->
    [ ("leaves", string_of_int (List.length leaves)) ]

(* One round trip: serialize, count, send, count, decode, and re-raise
   server-reported failures as the typed exceptions the pre-split code
   threw from the same situations. When the SNFT recorder is on, the
   round is logged before error re-raising, so failed round trips leak
   (and are recorded) exactly like successful ones. *)
let call conn ph req =
  let up = Wire.request_to_string req in
  let down = conn.handle up in
  Atomic.incr conn.c_requests;
  ignore (Atomic.fetch_and_add conn.c_bytes_up (String.length up));
  ignore (Atomic.fetch_and_add conn.c_bytes_down (String.length down));
  Metrics.incr m_requests;
  Metrics.add m_bytes_up (String.length up);
  Metrics.add m_bytes_down (String.length down);
  Metrics.incr ph.p_requests;
  Metrics.add ph.p_bytes_up (String.length up);
  Metrics.add ph.p_bytes_down (String.length down);
  let resp = Wire.response_of_string down in
  if Wiretrace.recording () then
    Wiretrace.record_round ~phase:ph.p_name
      ~up:(Wire.request_tag req, String.length up, summarize_request req)
      ~down:(Wire.response_tag resp, String.length down, summarize_response resp);
  match resp with
  | Wire.R_corrupt c -> raise (Integrity.Corruption c)
  | Wire.R_error { not_found = true; _ } -> raise Not_found
  | Wire.R_error { not_found = false; msg } -> invalid_arg msg
  | Wire.R_busy -> raise Busy
  | resp -> resp

(* One raw round trip for connection *composers* (the sharded
   coordinator): per-connection atomics only — none of the global or
   per-phase [exec.wire.*] counters, no SNFT recording, no typed
   re-raising. The composer is itself behind an outer [call], which is
   where boundary traffic gets counted exactly once; inner fan-out
   traffic is the composer's to account (e.g. [exec.wire.shard<i>.*]). *)
let exchange_raw conn up =
  let down = conn.handle up in
  Atomic.incr conn.c_requests;
  ignore (Atomic.fetch_and_add conn.c_bytes_up (String.length up));
  ignore (Atomic.fetch_and_add conn.c_bytes_down (String.length down));
  down

let protocol_error what = invalid_arg ("Server_api: unexpected response to " ^ what)

let describe conn =
  match call conn ph_admin Wire.Describe with
  | Wire.R_described { relation_name; leaves } -> (relation_name, leaves)
  | _ -> protocol_error "Describe"

let check_shape conn =
  match call conn ph_admin Wire.Check_shape with
  | Wire.R_unit -> ()
  | _ -> protocol_error "Check_shape"

let install conn image =
  match call conn ph_admin (Wire.Install image) with
  | Wire.R_unit -> ()
  | _ -> protocol_error "Install"

let index_probe conn ~leaf ~attr ~key =
  match call conn ph_probe (Wire.Index_probe { leaf; attr; key }) with
  | Wire.R_slots slots -> slots
  | _ -> protocol_error "Index_probe"

let filter conn ~leaf ~ops =
  match call conn ph_filter (Wire.Filter { leaf; ops }) with
  | Wire.R_mask { mask; scanned } -> (mask, scanned)
  | _ -> protocol_error "Filter"

let filter_batch conn ~queries =
  match call conn ph_filter (Wire.Q_batch { queries }) with
  | Wire.R_batch { results } ->
    if List.length results <> List.length queries then
      protocol_error "Q_batch (result count)"
    else results
  | _ -> protocol_error "Q_batch"

let fetch_rows conn ~leaf ~attrs ~slots =
  match call conn ph_fetch (Wire.Fetch_rows { leaf; attrs; slots }) with
  | Wire.R_rows rows -> rows
  | _ -> protocol_error "Fetch_rows"

let fetch_tids conn ~leaf =
  match call conn ph_fetch (Wire.Fetch_tids { leaf }) with
  | Wire.R_tids tids ->
    Mutex.protect conn.memo_mutex (fun () ->
        match Hashtbl.find_opt conn.tid_memo leaf with
        | Some memo when memo = tids -> memo
        | _ ->
          Hashtbl.replace conn.tid_memo leaf tids;
          tids)
  | _ -> protocol_error "Fetch_tids"

let oram_init conn ~leaf ~seed ~block_size ~blocks =
  match call conn ph_oram (Wire.Oram_init { leaf; seed; block_size; blocks }) with
  | Wire.R_oram { block = None; touches } -> touches
  | _ -> protocol_error "Oram_init"

let oram_read conn ~leaf ~slot =
  match call conn ph_oram (Wire.Oram_read { leaf; slot }) with
  | Wire.R_oram { block = Some block; touches } -> (block, touches)
  | _ -> protocol_error "Oram_read"

let phe_sum conn ~leaf ~attr =
  match call conn ph_phe (Wire.Phe_sum { leaf; attr }) with
  | Wire.R_nat n -> n
  | _ -> protocol_error "Phe_sum"

let group_sum conn ~leaf ~group_by ~sum =
  match call conn ph_phe (Wire.Group_sum { leaf; group_by; sum }) with
  | Wire.R_groups groups -> groups
  | _ -> protocol_error "Group_sum"

let store_stats conn =
  match call conn ph_admin Wire.Q_store_stats with
  | Wire.R_store_stats { leaves } -> leaves
  | _ -> protocol_error "Q_store_stats"

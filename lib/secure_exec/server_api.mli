(** The trust boundary, reified: every server-side operation of the
    execution stack crosses this interface as a serialized [Wire] message.

    The split enforces the paper's threat model structurally. The client
    half ([Executor], [System]) holds the keys and sees only
    {!wire_stats}-accountable byte strings; the server half is a
    {!store_view} over some storage {!BACKEND} (in-process arrays, files
    on disk, eventually a socket) and sees only ciphertexts, tokens and
    structural metadata — a backend implementor {e cannot} reach key
    material because nothing in this signature carries any.

    A {!conn} is one client/server session: a request serializer, the
    backend's dispatch loop, byte/request accounting (global and
    per-phase [exec.wire.*] counters plus per-connection {!stats}), and
    the per-connection server state (ORAM sessions). Answers are
    backend-invisible by construction: both ends of every exchange are
    the same serialized bytes regardless of how the backend stores its
    leaves. *)

(** What a backend must expose — the full server-side capability set.
    [leaf] may page from disk and must validate what it loads
    (raising [Integrity.Corruption]); [eq_index] must account through
    [Enc_relation.eq_index] so index hit/build counters stay
    backend-independent; [describe]/[leaf] raise [Not_found] or
    [Invalid_argument] on unknown names / empty stores. *)
type store_view = {
  describe : unit -> string * (string * int) list;
      (** relation name and (leaf label, row count) in stored order *)
  check_shape : unit -> unit;
  install : string -> unit;  (** parse and adopt a [Wire] store image *)
  leaf : string -> Enc_relation.enc_leaf;
  eq_index : leaf:string -> attr:string -> (string, int list) Hashtbl.t option;
  paillier : unit -> Snf_crypto.Paillier.public_key;
}

module type BACKEND = sig
  type t

  val name : string
  val view : t -> store_view
  val close : t -> unit
end

type conn

type wire_stats = { requests : int; bytes_up : int; bytes_down : int }

exception Busy
(** A transport rejected the request under admission control
    ([Wire.R_busy]): the request was never executed and is safe to
    retry. In-process backends never raise it. *)

val session_handler : store_view -> string -> string
(** One server session over a view: decode request bytes, dispatch,
    serialize the response. Each call to [session_handler view] makes a
    fresh session (its own ORAM table) — this is the server half of
    {!connect}, exposed so a network server can run one session per
    accepted socket against a shared view. Typed failures
    ([Integrity.Corruption], [Not_found], [Invalid_argument] — which
    covers malformed request bytes) come back as [R_corrupt]/[R_error]
    payloads, never as raised exceptions. *)

val connect : (module BACKEND with type t = 'a) -> 'a -> conn
(** Open a session over a backend instance. Each connection gets its own
    server-side ORAM session table; none of the client-side state
    (counters, decoded-tid memo) is visible to the backend. *)

val connect_handler :
  name:string -> handle:(string -> string) -> close:(unit -> unit) -> conn
(** Open a session over a raw request-bytes -> response-bytes exchange —
    the client half of {!connect}, exposed so a network client can splice
    a socket round trip under the unchanged accounting/memo machinery.
    [handle] receives exactly the serialized SNFM request and must return
    exactly the serialized SNFM response (any framing stripped), so
    {!stats} and the [exec.wire.*] counters measure the same bytes as an
    in-process backend. [handle] may raise to signal transport failure;
    the exception passes through {!conn} calls untouched. *)

val backend_name : conn -> string

val close : conn -> unit
(** Close the backend (the disk backend removes an owned temp dir). *)

val stats : conn -> wire_stats
(** Cumulative traffic on this connection. The same quantities are also
    accumulated in the process-wide counters [exec.wire.requests] /
    [exec.wire.bytes_up] / [exec.wire.bytes_down] and per-phase
    [exec.wire.{admin,probe,filter,fetch,oram,phe}.*]. *)

val exchange_raw : conn -> string -> string
(** One raw serialized-request -> serialized-response round trip,
    updating {e only} this connection's {!stats} — none of the global or
    per-phase [exec.wire.*] counters, no SNFT recording, and no typed
    re-raising of [R_error]/[R_corrupt]/[R_busy]. For connection
    composers ([Backend_sharded]) that sit {e behind} an outer
    connection: the outer [call] counts the boundary traffic exactly
    once, and the composer accounts its inner fan-out traffic itself
    (the per-shard [exec.wire.shard<i>.*] counters). Transport
    exceptions from the underlying handler pass through untouched. *)

(** {1 Typed stubs}

    One round trip each: serialize the request, hand the bytes to the
    backend's dispatcher, decode the response. Server-side failures come
    back typed and are re-raised as the exceptions the pre-split executor
    threw from the same situations: [R_corrupt] as
    [Integrity.Corruption], [R_error] as [Not_found] /
    [Invalid_argument]. *)

val describe : conn -> string * (string * int) list
val check_shape : conn -> unit
val install : conn -> string -> unit

val index_probe :
  conn -> leaf:string -> attr:string -> key:string option -> int list option
(** Always sent (and the server always consults [Enc_relation.eq_index]),
    even with [key = None] — index accounting must not depend on the
    token's shape. [None] result: the column has no canonical index. *)

val filter : conn -> leaf:string -> ops:Wire.filter_op list -> bool array * int
(** Selection mask over the leaf's slots plus cells scanned. *)

val filter_batch :
  conn ->
  queries:(string * Wire.filter_op list) list list ->
  (bool array * int) list list
(** K filter workloads in ONE round trip ([Wire.Q_batch]): per query an
    ordered [(leaf, ops)] list, answered positionally with (mask,
    scanned) pairs. The server loads each distinct leaf once for the
    whole batch; per-query scan accounting is unchanged. Counted under
    the [filter] wire phase.
    @raise Invalid_argument if the server answers a different number of
    queries than were asked. *)

val fetch_rows :
  conn -> leaf:string -> attrs:string list -> slots:int list ->
  Enc_relation.cell array array
(** Ciphertext cells, one inner array per requested attribute (request
    order), each in [slots] order. *)

val fetch_tids : conn -> leaf:string -> string array
(** The leaf's tid ciphertext column. The server is asked on every call
    (the traffic is real); when the bytes are unchanged since the last
    call on this connection the same physical array is returned, so
    [Enc_relation.decrypt_tids_cached] can recognize a stable leaf. *)

val oram_init :
  conn -> leaf:string -> seed:int -> block_size:int -> blocks:string array -> int
(** Install sealed blocks into a fresh per-connection Path ORAM for the
    leaf; returns the ORAM's cumulative bucket touches after setup. *)

val oram_read : conn -> leaf:string -> slot:int -> string * int
(** Oblivious block fetch: (sealed block, cumulative bucket touches). *)

val phe_sum : conn -> leaf:string -> attr:string -> Snf_bignum.Nat.t

val group_sum :
  conn -> leaf:string -> group_by:string -> sum:string ->
  (Enc_relation.cell * Snf_bignum.Nat.t) list

val store_stats : conn -> Wire.leaf_stats list
(** Planner statistics for every stored leaf ([Wire.Q_store_stats]):
    row counts plus, per canonically-encrypted column, the equality-index
    class-size histogram keyed by canonical-ciphertext digest. Everything
    in the answer is derivable from the store image the server already
    holds, so the request reveals only that the client plans. Counted
    under the [admin] wire phase; fetched at bind time, never during
    [plan], so per-query wire accounting is planner-invisible. *)

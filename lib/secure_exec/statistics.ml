module Metrics = Snf_obs.Metrics

(* Server-visible planner statistics. Everything here reduces facts the
   server already reveals — leaf row counts from Describe, value-class
   histograms from the equality indexes ([Wire.Q_store_stats]), and the
   client's own wire-byte accounting — so feeding the planner from this
   module adds zero leakage. The [version] stamp is what the plan cache
   keys freshness on: it moves only when the reduced statistics drift
   past {!drift_threshold}, so a stable store keeps its cached plans. *)

type attr_stats = { distinct : int; max_class : int }

type leaf_stats = { rows : int; attrs : (string * attr_stats) list }

type t = {
  lock : Mutex.t;
  mutable leaves : (string * leaf_stats) list;
  mutable version : int;
  (* Per-phase EWMA of bytes per request, both directions summed — the
     cost model's wire term. Keyed by the [exec.wire.<phase>.*] names. *)
  mutable wire_ewma : (string * float) list;
  mutable wire_last : (string * (int * int)) list; (* phase -> (reqs, bytes) *)
}

let drift_threshold = 0.2
let ewma_alpha = 0.25

let create () =
  { lock = Mutex.create ();
    leaves = [];
    version = 0;
    wire_ewma = [];
    wire_last = [] }

let reduce (raw : Wire.leaf_stats list) =
  List.map
    (fun (l : Wire.leaf_stats) ->
      ( l.Wire.s_label,
        { rows = l.Wire.s_rows;
          attrs =
            List.map
              (fun (a : Wire.attr_stats) ->
                ( a.Wire.a_attr,
                  { distinct = List.length a.Wire.a_classes;
                    max_class =
                      List.fold_left
                        (fun m (_, n) -> max m n)
                        0 a.Wire.a_classes } ))
              l.Wire.s_attrs } ))
    raw

(* Relative change past the threshold on any row count or distinct
   count, or any change in the leaf/attr sets, counts as drift. *)
let drifted old fresh =
  let rel a b = abs_float (float_of_int a -. float_of_int b) /. float_of_int (max 1 b) in
  List.length old <> List.length fresh
  || List.exists2
       (fun (lbl0, (l0 : leaf_stats)) (lbl1, (l1 : leaf_stats)) ->
         lbl0 <> lbl1
         || rel l1.rows l0.rows > drift_threshold
         || List.length l0.attrs <> List.length l1.attrs
         || List.exists2
              (fun (a0, (s0 : attr_stats)) (a1, (s1 : attr_stats)) ->
                a0 <> a1 || rel s1.distinct s0.distinct > drift_threshold)
              l0.attrs l1.attrs)
       old fresh

let ingest t raw =
  let fresh = reduce raw in
  Mutex.protect t.lock (fun () ->
      if t.leaves = [] || drifted t.leaves fresh then begin
        t.leaves <- fresh;
        t.version <- t.version + 1
      end
      else t.leaves <- fresh)

let version t = Mutex.protect t.lock (fun () -> t.version)

let rows t ~leaf =
  Mutex.protect t.lock (fun () ->
      Option.map (fun l -> l.rows) (List.assoc_opt leaf t.leaves))

let distinct t ~leaf ~attr =
  Mutex.protect t.lock (fun () ->
      match List.assoc_opt leaf t.leaves with
      | None -> None
      | Some l ->
        Option.map (fun (a : attr_stats) -> a.distinct) (List.assoc_opt attr l.attrs))

(* Fraction of a leaf's rows an equality predicate on [attr] keeps:
   worst-case class share when the histogram is known (max class /
   rows — honest about skew), 1.0 when the column has no canonical
   equality structure the server could exploit. *)
let eq_selectivity t ~leaf ~attr =
  Mutex.protect t.lock (fun () ->
      match List.assoc_opt leaf t.leaves with
      | None -> 1.0
      | Some l -> (
        match List.assoc_opt attr l.attrs with
        | None -> 1.0
        | Some a ->
          if l.rows = 0 || a.distinct = 0 then 1.0
          else
            min 1.0 (float_of_int a.max_class /. float_of_int (max 1 l.rows))))

(* --- wire-byte EWMAs --------------------------------------------------------- *)

let phases = [ "admin"; "probe"; "filter"; "fetch"; "oram"; "phe" ]

(* Seeds for a cold EWMA: rough per-request byte shape of each phase, so
   the first plans of a session are still ordered sensibly. *)
let cold_estimate = function
  | "fetch" -> 2048.0
  | "filter" -> 512.0
  | "oram" -> 4096.0
  | _ -> 128.0

let observe_wire t =
  let sample phase =
    let v n = Metrics.value (Metrics.counter (Printf.sprintf "exec.wire.%s.%s" phase n)) in
    (v "requests", v "bytes_up" + v "bytes_down")
  in
  let fresh = List.map (fun p -> (p, sample p)) phases in
  Mutex.protect t.lock (fun () ->
      List.iter
        (fun (p, (reqs, bytes)) ->
          let r0, b0 =
            Option.value (List.assoc_opt p t.wire_last) ~default:(0, 0)
          in
          if reqs > r0 then begin
            let per = float_of_int (bytes - b0) /. float_of_int (reqs - r0) in
            let ewma =
              match List.assoc_opt p t.wire_ewma with
              | None -> per
              | Some e -> ((1.0 -. ewma_alpha) *. e) +. (ewma_alpha *. per)
            in
            t.wire_ewma <- (p, ewma) :: List.remove_assoc p t.wire_ewma
          end;
          t.wire_last <- (p, (reqs, bytes)) :: List.remove_assoc p t.wire_last)
        fresh)

let wire_bytes_per_request t ~phase =
  Mutex.protect t.lock (fun () ->
      Option.value (List.assoc_opt phase t.wire_ewma) ~default:(cold_estimate phase))

let leaf_labels t = Mutex.protect t.lock (fun () -> List.map fst t.leaves)

let pp fmt t =
  let leaves = Mutex.protect t.lock (fun () -> t.leaves) in
  Format.fprintf fmt "@[<v>stats v%d:" (version t);
  List.iter
    (fun (lbl, l) ->
      Format.fprintf fmt "@,  %s: %d rows%s" lbl l.rows
        (String.concat ""
           (List.map
              (fun (a, (s : attr_stats)) ->
                Printf.sprintf ", %s d=%d max=%d" a s.distinct s.max_class)
              l.attrs)))
    leaves;
  Format.fprintf fmt "@]"

(** Streaming, server-visible planner statistics.

    Everything in here reduces facts the honest-but-curious server
    already holds: per-leaf row counts ([Describe]), value-class
    histograms of canonically-encrypted columns
    ([Wire.Q_store_stats] — derived from the same equality indexes a
    probe would build), and the client's own per-phase wire-byte
    accounting ([Snf_obs.Metrics]'s [exec.wire.<phase>.*] counters).
    Feeding the planner from this module therefore adds {e zero}
    leakage: the adversary learns nothing from planning it could not
    compute itself from the store image and the traffic it carries.

    A {!t} carries a monotonic {!version} that advances only when the
    reduced statistics drift past a relative threshold (20%) or the
    leaf/attr population changes — the stamp the plan cache uses, so a
    stable store keeps its cached plans and a re-encrypted or
    re-installed one invalidates them. *)

type t

type attr_stats = { distinct : int; max_class : int }

type leaf_stats = { rows : int; attrs : (string * attr_stats) list }

val create : unit -> t
(** Empty statistics at version 0 (nothing ingested yet). *)

val ingest : t -> Wire.leaf_stats list -> unit
(** Reduce a server stats answer ([Server_api.store_stats]) into
    per-(leaf, attr) distinct/max-class counts. Bumps {!version} on the
    first ingest and whenever any row count or distinct count moves by
    more than 20% relative (or the leaf/attr sets change); an ingest of
    equivalent statistics leaves the version — and thus every cached
    plan — untouched. Thread-safe. *)

val observe_wire : t -> unit
(** Fold the current [exec.wire.<phase>.*] counters into per-phase
    bytes-per-request EWMAs (α = 0.25). Call sites sample at bind time
    and other quiet moments — never inside a query — so the planner's
    wire model cannot perturb per-query wire accounting. *)

val version : t -> int

val rows : t -> leaf:string -> int option

val distinct : t -> leaf:string -> attr:string -> int option
(** Number of value classes of a canonically-encrypted column, [None]
    when the leaf/attr is unknown or carries no equality structure. *)

val eq_selectivity : t -> leaf:string -> attr:string -> float
(** Estimated fraction of the leaf's rows an equality predicate on
    [attr] keeps: the worst-case class share [max_class / rows] when the
    histogram is known (honest about skew), [1.0] otherwise. Always in
    [(0, 1]]. *)

val wire_bytes_per_request : t -> phase:string -> float
(** Per-phase EWMA of bytes per request (both directions); a calibrated
    cold-start estimate before the first observation. *)

val leaf_labels : t -> string list

val pp : Format.formatter -> t -> unit

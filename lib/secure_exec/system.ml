open Snf_relational
module Normalizer = Snf_core.Normalizer
module Partition = Snf_core.Partition
module Paillier = Snf_crypto.Paillier
module Nat = Snf_bignum.Nat

type ext_backend = {
  ext_name : string;
  ext_connect : unit -> Server_api.conn;
}

type backend_kind = [ `Mem | `Disk | `Ext of ext_backend ]

let backend_kind_name = function
  | `Mem -> "mem"
  | `Disk -> "disk"
  | `Ext e -> e.ext_name

(* A sharded coordinator as a backend kind: binding ships the image
   through the coordinator's Install, which partitions it across the
   shard fleet. Rebinding after a release reconnects the inner shards
   lazily, so a reconnect-and-retry after a shard failure is just
   release + query. *)
let sharded st =
  `Ext { ext_name = "sharded"; ext_connect = (fun () -> Backend_sharded.connect st) }

type binding = { for_enc : Enc_relation.t; conn : Server_api.conn }

type server_binding = { sb_backend : backend_kind; mutable sb : binding option }

type owner = {
  client : Enc_relation.client;
  policy : Snf_core.Policy.t;
  plan : Normalizer.plan;
  enc : Enc_relation.t;
  plaintext : Relation.t;
  server : server_binding;
  stats : Statistics.t;
}

(* A memory binding adopts the store in place — no Install message, and
   shared index state, which the fault harness relies on. A disk binding
   ships the full image through Install into a private temp directory;
   that traffic is charged when the binding is made (outsourcing), not to
   any query window. *)
let install_image conn enc =
  try Server_api.install conn (Wire.to_string enc)
  with e ->
    Server_api.close conn;
    raise e

let bind kind enc =
  match kind with
  | `Mem -> Server_api.connect (module Backend_mem) (Backend_mem.of_store enc)
  | `Disk ->
    let conn = Server_api.connect (module Backend_disk) (Backend_disk.create_temp ()) in
    install_image conn enc;
    conn
  | `Ext e ->
    (* An external transport (e.g. a socket): connect, then ship the
       image through Install like the disk binding — the remote end
       starts empty. *)
    let conn = e.ext_connect () in
    install_image conn enc;
    conn

(* The binding follows [owner.enc] by physical identity: harness twins
   that swap in a tampered store ([{ owner with enc }]) transparently
   rebind, so the server always serves exactly the store the handle
   claims. *)
let conn_of owner =
  let b = owner.server in
  match b.sb with
  | Some { for_enc; conn } when for_enc == owner.enc -> conn
  | prev ->
    (match prev with Some { conn; _ } -> Server_api.close conn | None -> ());
    let conn = bind b.sb_backend owner.enc in
    b.sb <- Some { for_enc = owner.enc; conn };
    conn

let backend owner = owner.server.sb_backend

let release owner =
  match owner.server.sb with
  | None -> ()
  | Some { conn; _ } ->
    owner.server.sb <- None;
    Server_api.close conn

let with_backend owner kind =
  let owner = { owner with server = { sb_backend = kind; sb = None } } in
  ignore (conn_of owner);
  owner

let wire_stats owner = Server_api.stats (conn_of owner)

let finish ?(backend = `Mem) owner_sans_server =
  let owner = { owner_sans_server with server = { sb_backend = backend; sb = None } } in
  ignore (conn_of owner);
  owner

(* Planner statistics are refreshed on demand — at handle creation and
   other quiet moments, never inside a query window — so the extra
   Q_store_stats round trip shows up in admin traffic only and per-query
   wire accounting (and recorded traces) are exactly what they would be
   without a cost planner. *)
let refresh_stats owner =
  let conn = conn_of owner in
  Statistics.ingest owner.stats (Server_api.store_stats conn);
  Statistics.observe_wire owner.stats;
  Statistics.version owner.stats

let cost_planner ?params ?max_cover ?max_orders owner =
  ignore (refresh_stats owner);
  Cost_model.planner ?params ?max_cover ?max_orders
    ~epoch:(fun () -> Enc_relation.key_epoch owner.client)
    owner.stats

let outsource ?semantics ?strategy ?graph ?mode ?(seed = 0x5eed) ?master ?backend ~name r
    policy =
  let graph =
    match graph with
    | Some g -> g
    | None -> Snf_deps.Dep_graph.of_relation ?mode r
  in
  let plan = Normalizer.plan_with_graph ?semantics ?strategy graph policy in
  let master = Option.value master ~default:("master:" ^ name) in
  let client = Enc_relation.make_client ~seed ~relation_name:name ~master () in
  let enc = Enc_relation.encrypt client r plan.Normalizer.representation in
  finish ?backend
    { client;
      policy;
      plan;
      enc;
      plaintext = r;
      server = { sb_backend = `Mem; sb = None };
      stats = Statistics.create () }

let outsource_prepared ?(seed = 0x5eed) ?master ?backend ~name ~graph ~representation r
    policy =
  let plan =
    { Normalizer.policy;
      graph;
      representation;
      strategy = `Non_repeating;
      closure = Snf_core.Closure.analyze graph representation;
      snf = Snf_core.Audit.is_snf graph policy representation }
  in
  let master = Option.value master ~default:("master:" ^ name) in
  let client = Enc_relation.make_client ~seed ~relation_name:name ~master () in
  let enc = Enc_relation.encrypt client r representation in
  finish ?backend
    { client;
      policy;
      plan;
      enc;
      plaintext = r;
      server = { sb_backend = `Mem; sb = None };
      stats = Statistics.create () }

let query ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache ?drop_tid
    owner q =
  Executor.run_conn ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache
    ?drop_tid owner.client (conn_of owner) owner.plan.Normalizer.representation q

let query_checked ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache
    ?drop_tid owner q =
  match
    query ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache ?drop_tid
      owner q
  with
  | Ok r -> Ok r
  | Error e -> Error (`Plan e)
  | exception Integrity.Corruption c -> Error (`Corruption c)

let query_batch ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache
    ?drop_tid owner qs =
  Executor.run_batch ?mode ?params ?planner ?use_index ?use_tid_cache ?use_mapping_cache
    ?drop_tid owner.client (conn_of owner) owner.plan.Normalizer.representation qs

let record_wire_trace f =
  Snf_obs.Wiretrace.start ();
  match f () with
  | v -> (v, Snf_obs.Wiretrace.stop ())
  | exception e ->
    ignore (Snf_obs.Wiretrace.stop ());
    raise e

let reference owner q = Query.reference_answer owner.plaintext q

let bag r =
  Relation.rows r
  |> List.map (fun row ->
         String.concat "\x00" (List.map Value.encode (Array.to_list row)))
  |> List.sort String.compare

let verify ?mode owner q =
  match query ?mode owner q with
  | Error _ -> false
  | Ok (answer, _) -> bag answer = bag (reference owner q)

let storage_bytes profile owner =
  Storage_model.representation_bytes profile owner.plaintext
    owner.plan.Normalizer.representation

(* Aggregation column schemes come from the representation, like every
   other decryption the client performs. *)
let rep_scheme owner ~leaf ~attr =
  let rep = owner.plan.Normalizer.representation in
  match List.find_opt (fun (l : Partition.leaf) -> l.Partition.label = leaf) rep with
  | None -> raise Not_found
  | Some l -> (
    match Partition.scheme_in_leaf l attr with
    | Some s -> s
    | None -> raise Not_found)

let group_sum owner ~leaf ~group_by ~sum =
  let conn = conn_of owner in
  let gscheme = rep_scheme owner ~leaf ~attr:group_by in
  let kp = Enc_relation.client_paillier owner.client in
  Server_api.group_sum conn ~leaf ~group_by ~sum
  |> List.map (fun (rep_cell, acc) ->
         ( Enc_relation.decrypt_cell owner.client ~leaf ~attr:group_by ~scheme:gscheme
             rep_cell,
           Nat.to_int_exn (Paillier.decrypt kp acc) ))
  |> List.sort (fun (v1, _) (v2, _) -> Value.compare v1 v2)

let sum owner ~leaf ~attr =
  let conn = conn_of owner in
  let c = Server_api.phe_sum conn ~leaf ~attr in
  let kp = Enc_relation.client_paillier owner.client in
  Nat.to_int_exn (Paillier.decrypt kp c)

open Snf_relational
module Normalizer = Snf_core.Normalizer
module Paillier = Snf_crypto.Paillier
module Nat = Snf_bignum.Nat

type owner = {
  client : Enc_relation.client;
  policy : Snf_core.Policy.t;
  plan : Normalizer.plan;
  enc : Enc_relation.t;
  plaintext : Relation.t;
}

let outsource ?semantics ?strategy ?graph ?mode ?(seed = 0x5eed) ?master ~name r policy =
  let graph =
    match graph with
    | Some g -> g
    | None -> Snf_deps.Dep_graph.of_relation ?mode r
  in
  let plan = Normalizer.plan_with_graph ?semantics ?strategy graph policy in
  let master = Option.value master ~default:("master:" ^ name) in
  let client = Enc_relation.make_client ~seed ~relation_name:name ~master () in
  let enc = Enc_relation.encrypt client r plan.Normalizer.representation in
  { client; policy; plan; enc; plaintext = r }

let outsource_prepared ?(seed = 0x5eed) ?master ~name ~graph ~representation r policy =
  let plan =
    { Normalizer.policy;
      graph;
      representation;
      strategy = `Non_repeating;
      closure = Snf_core.Closure.analyze graph representation;
      snf = Snf_core.Audit.is_snf graph policy representation }
  in
  let master = Option.value master ~default:("master:" ^ name) in
  let client = Enc_relation.make_client ~seed ~relation_name:name ~master () in
  let enc = Enc_relation.encrypt client r representation in
  { client; policy; plan; enc; plaintext = r }

let query ?mode ?params ?use_index ?use_tid_cache ?drop_tid owner q =
  Executor.run ?mode ?params ?use_index ?use_tid_cache ?drop_tid owner.client owner.enc
    owner.plan.Normalizer.representation q

let query_checked ?mode ?params ?use_index ?use_tid_cache ?drop_tid owner q =
  match query ?mode ?params ?use_index ?use_tid_cache ?drop_tid owner q with
  | Ok r -> Ok r
  | Error e -> Error (`Plan e)
  | exception Integrity.Corruption c -> Error (`Corruption c)

let reference owner q = Query.reference_answer owner.plaintext q

let bag r =
  Relation.rows r
  |> List.map (fun row ->
         String.concat "\x00" (List.map Value.encode (Array.to_list row)))
  |> List.sort String.compare

let verify ?mode owner q =
  match query ?mode owner q with
  | Error _ -> false
  | Ok (answer, _) -> bag answer = bag (reference owner q)

let storage_bytes profile owner =
  Storage_model.representation_bytes profile owner.plaintext
    owner.plan.Normalizer.representation

let group_sum owner ~leaf ~group_by ~sum =
  let l = Enc_relation.find_leaf owner.enc leaf in
  let gcol = Enc_relation.column l group_by in
  let kp = Enc_relation.client_paillier owner.client in
  Enc_relation.phe_group_sum owner.enc l ~group_by ~sum
  |> List.map (fun (rep, acc) ->
         ( Enc_relation.decrypt_cell owner.client ~leaf ~attr:group_by
             ~scheme:gcol.Enc_relation.scheme rep,
           Nat.to_int_exn (Paillier.decrypt kp acc) ))
  |> List.sort (fun (v1, _) (v2, _) -> Value.compare v1 v2)

let sum owner ~leaf ~attr =
  let l = Enc_relation.find_leaf owner.enc leaf in
  let c = Enc_relation.phe_sum owner.enc l attr in
  let kp = Enc_relation.client_paillier owner.client in
  Nat.to_int_exn (Paillier.decrypt kp c)

(** End-to-end facade: Algorithm 1 in one type.

    [outsource] performs the owner-side pipeline — dependency inference
    (or a supplied dependence graph), leakage closure, partitioning,
    encryption — and yields an [owner] handle bundling the key material,
    the normalization plan and the server-resident encrypted store.
    [query] runs the cloud-side path of lines 5–12. The owner retains the
    plaintext relation (data owners do), which powers [reference] answers
    and [verify]. *)

open Snf_relational

type ext_backend = {
  ext_name : string;  (** what {!backend_kind_name} reports, e.g. ["socket"] *)
  ext_connect : unit -> Server_api.conn;
      (** open a fresh connection to an {e empty} remote server; the
          binding ships the store through Install, like [`Disk] *)
}
(** An externally provided transport (e.g. [Snf_net.Client]'s socket
    backend), kept abstract here so [System] stays network-free. *)

type backend_kind = [ `Mem | `Disk | `Ext of ext_backend ]
(** Which server backend the owner's connection binds: [`Mem] adopts the
    in-process store behind the [Server_api] boundary; [`Disk] explodes
    the store image into a private temp directory ([Backend_disk]) and
    serves it paged from files; [`Ext] connects through a caller-supplied
    transport and installs the image remotely. Answers are bit-identical
    in every case — the backend is invisible above the message
    protocol. *)

val backend_kind_name : backend_kind -> string

val sharded : Backend_sharded.t -> backend_kind
(** A sharded coordinator as a backend kind (name ["sharded"]): binding
    ships the image through the coordinator's Install, which partitions
    it across the shard fleet; queries scatter-gather with byte-identical
    outer responses. Rebinding after {!release} reconnects the inner
    shards, so shard-failure recovery is release + retry. *)

type server_binding
(** The owner's (mutable) connection to its server backend. *)

type owner = {
  client : Enc_relation.client;
  policy : Snf_core.Policy.t;
  plan : Snf_core.Normalizer.plan;
  enc : Enc_relation.t;   (** what the cloud stores *)
  plaintext : Relation.t; (** retained at the owner *)
  server : server_binding;
  stats : Statistics.t;   (** server-visible planner statistics *)
}

val outsource :
  ?semantics:Snf_core.Semantics.t ->
  ?strategy:Snf_core.Normalizer.strategy ->
  ?graph:Snf_deps.Dep_graph.t ->
  ?mode:Snf_deps.Dep_graph.mode ->
  ?seed:int ->
  ?master:string ->
  ?backend:backend_kind ->
  name:string ->
  Relation.t ->
  Snf_core.Policy.t ->
  owner
(** When [graph] is omitted it is mined from the data
    ([Dep_graph.of_relation] with defaults and the given [mode]). Default
    strategy [`Non_repeating], master secret derived from [name] unless
    given. The server connection binds eagerly (default backend [`Mem]),
    so a [`Disk] owner's Install traffic is charged here, outside any
    query window. *)

val outsource_prepared :
  ?seed:int ->
  ?master:string ->
  ?backend:backend_kind ->
  name:string ->
  graph:Snf_deps.Dep_graph.t ->
  representation:Snf_core.Partition.t ->
  Relation.t ->
  Snf_core.Policy.t ->
  owner
(** Outsource under a caller-supplied representation (e.g. one fragment of
    a horizontal plan) instead of re-running a strategy. The plan records
    the given representation verbatim; its [snf] verdict is computed
    against [graph] with default semantics. *)

val with_backend : owner -> backend_kind -> owner
(** The same owner (keys, plan, store, plaintext) bound to a fresh
    connection over the given backend — eagerly, as in [outsource]. The
    original owner's binding is untouched; each handle releases its own
    connection. Used by the differential harness to compare backends on
    identical stores. *)

val release : owner -> unit
(** Close the owner's server connection (for [`Disk], removes its temp
    directory). Idempotent; the next query transparently rebinds. *)

val backend : owner -> backend_kind

val wire_stats : owner -> Server_api.wire_stats
(** Cumulative traffic on the owner's connection — includes the Install
    message for [`Disk] bindings, which per-query traces exclude. *)

val refresh_stats : owner -> int
(** Fetch the server's store statistics ([Server_api.store_stats]) into
    the owner's {!Statistics.t} and fold the current wire counters into
    its per-phase EWMAs; returns the (possibly advanced) statistics
    version. Called by {!cost_planner}; call it again after bulk store
    changes so a drifted store forces cached plans to be rebuilt. Always
    outside any query window — per-query wire accounting and recorded
    traces never carry statistics traffic. *)

val cost_planner :
  ?params:Cost_model.params ->
  ?max_cover:int ->
  ?max_orders:int ->
  owner ->
  Planner.handle
(** A cost-based planner handle for this owner ([Cost_model.planner]):
    candidates priced from the owner's server-visible statistics
    (refreshed now, via {!refresh_stats}), plan cache stamped with the
    client's key epoch and the statistics version so key rotation or
    statistics drift forces re-planning. Pass it as [?planner] to
    {!query} / {!query_checked} / {!query_batch}. *)

val query :
  ?mode:Executor.mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  owner -> Query.t -> (Relation.t * Executor.trace, string) result
(** [Error] is a planning failure. Detected storage corruption raises
    [Integrity.Corruption] (see [Executor.run]); use {!query_checked} to
    receive it as a result instead. [use_tid_cache] (default true) and
    [use_mapping_cache] (default false) are passed through to
    [Executor.run_conn] — identical answers either way. [planner]
    (default greedy) selects the planning handle; see {!cost_planner}. *)

val query_checked :
  ?mode:Executor.mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  owner -> Query.t ->
  ( Relation.t * Executor.trace,
    [ `Plan of string | `Corruption of Integrity.corruption ] )
  result
(** Like {!query}, with detected storage corruption reified as
    [`Corruption] instead of an exception — the entry point the
    [Snf_check] fault-injection harness drives. *)

val query_batch :
  ?mode:Executor.mode ->
  ?params:Cost_model.params ->
  ?planner:Planner.handle ->
  ?use_index:bool ->
  ?use_tid_cache:bool ->
  ?use_mapping_cache:bool ->
  ?drop_tid:(int -> bool) ->
  owner -> Query.t list -> (Relation.t * Executor.trace, string) result list
(** K queries through one shared pass over the owner's connection
    ([Executor.run_batch]): one [Wire.Q_batch] round trip for all
    filters, one shared oblivious alignment per distinct leaf set, and
    the crypto-free mapping cache on by default. Positional results;
    answers bag-identical to K {!query} calls. *)

val record_wire_trace : (unit -> 'a) -> 'a * Snf_obs.Wiretrace.trace
(** Run [f] with the SNFT wire-trace recorder on and return what the
    server saw: every SNFM round trip on every connection, canonicalised
    ([Snf_obs.Wiretrace]). The recorder is process-global — one
    recording at a time; nesting or concurrent use interleaves into one
    trace. Always stops the recorder, discarding the partial trace if
    [f] raises. *)

val reference : owner -> Query.t -> Relation.t

val verify : ?mode:Executor.mode -> owner -> Query.t -> bool
(** Secure answer equals the plaintext reference answer as a bag
    (multiset of rows; column order fixed by the projection). *)

val storage_bytes : Storage_model.profile -> owner -> int
(** Accounted size of the outsourced representation. *)

val sum : owner -> leaf:string -> attr:string -> int
(** Homomorphic SUM over a PHE column: server-side aggregation +
    client-side decryption. @raise Invalid_argument / Not_found as the
    underlying operations do. *)

val group_sum :
  owner -> leaf:string -> group_by:string -> sum:string ->
  (Snf_relational.Value.t * int) list
(** [SELECT group_by, SUM(sum) GROUP BY group_by], aggregated entirely
    server-side over ciphertexts ([Enc_relation.phe_group_sum]) and
    decrypted at the client; both columns must live in the named leaf.
    Sorted by group value. *)

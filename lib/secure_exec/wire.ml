open Snf_relational
module Scheme = Snf_crypto.Scheme
module Ore = Snf_crypto.Ore
module Nat = Snf_bignum.Nat

let magic = "SNFE"
let version = 1

(* --- primitive writers ---------------------------------------------------- *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_int buf n =
  (* 63-bit non-negative, 8 bytes LE *)
  if n < 0 then invalid_arg "Wire: negative integer";
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

(* --- primitive readers ----------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

let fail msg = invalid_arg ("Wire: " ^ msg)

let r_u8 c =
  if c.pos >= String.length c.data then fail "truncated";
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_int c =
  if c.pos + 8 > String.length c.data then fail "truncated";
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code c.data.[c.pos + i]
  done;
  c.pos <- c.pos + 8;
  if !v < 0 then fail "negative integer";
  !v

let r_string c =
  let n = r_int c in
  if c.pos + n > String.length c.data then fail "truncated string";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* Element count for a list/array about to be read. Every serialized
   element occupies at least one byte, so a count larger than the bytes
   left is malformed — reject it before allocating, keeping garbled
   lengths a typed error instead of a giant allocation. *)
let r_count c =
  let n = r_int c in
  if n > String.length c.data - c.pos then fail "count exceeds input";
  n

let w_option w buf = function
  | None -> w_u8 buf 0
  | Some x ->
    w_u8 buf 1;
    w buf x

let r_option r c =
  match r_u8 c with
  | 0 -> None
  | 1 -> Some (r c)
  | n -> fail (Printf.sprintf "bad option tag %d" n)

let w_list w buf xs =
  w_int buf (List.length xs);
  List.iter (w buf) xs

let r_list r c =
  let n = r_count c in
  List.init n (fun _ -> r c)

let w_array w buf xs =
  w_int buf (Array.length xs);
  Array.iter (w buf) xs

let r_array r c =
  let n = r_count c in
  Array.init n (fun _ -> r c)

(* Bit-packed bool array: the on-wire form of a filter mask, one bit per
   stored slot. *)
let w_bools buf a =
  let n = Array.length a in
  w_int buf n;
  let nbytes = (n + 7) / 8 in
  for i = 0 to nbytes - 1 do
    let b = ref 0 in
    for j = 0 to 7 do
      let k = (i * 8) + j in
      if k < n && a.(k) then b := !b lor (1 lsl j)
    done;
    w_u8 buf !b
  done

let r_bools c =
  let n = r_int c in
  let nbytes = (n + 7) / 8 in
  if n < 0 || c.pos + nbytes > String.length c.data then fail "truncated mask";
  let a = Array.init n (fun k -> Char.code c.data.[c.pos + (k / 8)] lsr (k mod 8) land 1 = 1) in
  c.pos <- c.pos + nbytes;
  a

(* --- scheme and cell codecs -------------------------------------------------- *)

let scheme_tag = function
  | Scheme.Plain -> 0
  | Scheme.Ndet -> 1
  | Scheme.Det -> 2
  | Scheme.Ope -> 3
  | Scheme.Ore -> 4
  | Scheme.Phe -> 5

let scheme_of_tag = function
  | 0 -> Scheme.Plain
  | 1 -> Scheme.Ndet
  | 2 -> Scheme.Det
  | 3 -> Scheme.Ope
  | 4 -> Scheme.Ore
  | 5 -> Scheme.Phe
  | n -> fail (Printf.sprintf "unknown scheme tag %d" n)

let w_cell buf (cell : Enc_relation.cell) =
  match cell with
  | Enc_relation.C_plain v ->
    w_u8 buf 0;
    w_string buf (Value.encode v)
  | Enc_relation.C_bytes b ->
    w_u8 buf 1;
    w_string buf b
  | Enc_relation.C_ord { ord; payload } ->
    w_u8 buf 2;
    w_int buf ord;
    w_string buf payload
  | Enc_relation.C_ore { ore; payload } ->
    w_u8 buf 3;
    let syms = Ore.symbols ore in
    w_int buf (Array.length syms);
    Array.iter (fun s -> w_u8 buf s) syms;
    w_string buf payload
  | Enc_relation.C_nat n ->
    w_u8 buf 4;
    w_string buf (Nat.to_bytes_be n)

let r_cell c : Enc_relation.cell =
  match r_u8 c with
  | 0 -> Enc_relation.C_plain (Value.decode (r_string c))
  | 1 -> Enc_relation.C_bytes (r_string c)
  | 2 ->
    let ord = r_int c in
    Enc_relation.C_ord { ord; payload = r_string c }
  | 3 ->
    let n = r_count c in
    let syms = Array.init n (fun _ -> r_u8 c) in
    Enc_relation.C_ore { ore = Ore.of_symbols syms; payload = r_string c }
  | 4 -> Enc_relation.C_nat (Nat.of_bytes_be (r_string c))
  | n -> fail (Printf.sprintf "unknown cell tag %d" n)

(* --- leaf codec ----------------------------------------------------------------- *)

let w_leaf buf (l : Enc_relation.enc_leaf) =
  w_string buf l.Enc_relation.label;
  w_int buf l.Enc_relation.row_count;
  Array.iter (w_string buf) l.Enc_relation.tids;
  w_int buf (List.length l.Enc_relation.columns);
  List.iter
    (fun (col : Enc_relation.enc_column) ->
      w_string buf col.Enc_relation.attr;
      w_u8 buf (scheme_tag col.Enc_relation.scheme);
      Array.iter (w_cell buf) col.Enc_relation.cells)
    l.Enc_relation.columns

let r_leaf c : Enc_relation.enc_leaf =
  let label = r_string c in
  let row_count = r_int c in
  if row_count > String.length c.data - c.pos then fail "row count exceeds input";
  let tids = Array.init row_count (fun _ -> r_string c) in
  let col_count = r_count c in
  let columns =
    List.init col_count (fun _ ->
        let attr = r_string c in
        let scheme = scheme_of_tag (r_u8 c) in
        let cells = Array.init row_count (fun _ -> r_cell c) in
        { Enc_relation.attr; scheme; cells })
  in
  { Enc_relation.label; row_count; tids; columns }

let leaf_to_string l =
  let buf = Buffer.create 1024 in
  w_leaf buf l;
  Buffer.contents buf

let leaf_of_string data =
  let c = { data; pos = 0 } in
  let l = r_leaf c in
  if c.pos <> String.length data then fail "trailing bytes";
  l

(* --- top level ----------------------------------------------------------------- *)

let to_string (t : Enc_relation.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  w_u8 buf version;
  w_string buf t.Enc_relation.relation_name;
  w_string buf (Nat.to_bytes_be t.Enc_relation.paillier_public.Snf_crypto.Paillier.n);
  w_int buf (List.length t.Enc_relation.leaves);
  List.iter (w_leaf buf) t.Enc_relation.leaves;
  Buffer.contents buf

let of_string data =
  let c = { data; pos = 0 } in
  if String.length data < 5 || String.sub data 0 4 <> magic then fail "bad magic";
  c.pos <- 4;
  let v = r_u8 c in
  if v <> version then fail (Printf.sprintf "unsupported version %d" v);
  let relation_name = r_string c in
  let n = Nat.of_bytes_be (r_string c) in
  let paillier_public = Snf_crypto.Paillier.public_of_n n in
  let leaf_count = r_count c in
  let leaves = List.init leaf_count (fun _ -> r_leaf c) in
  if c.pos <> String.length data then fail "trailing bytes";
  { Enc_relation.relation_name;
    leaves;
    paillier_public;
    index_cache = Hashtbl.create 8 }

let save path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- message codec --------------------------------------------------------------- *)

(* The request/response grammar of the client/server boundary
   ([Server_api]). Same primitive discipline as the store image, separate
   magic so a message can never be confused with a database image. *)

let msg_magic = "SNFM"
let msg_version = 1

type filter_op =
  | F_slots of int list
  | F_eq of string * Enc_relation.eq_token
  | F_range of string * Enc_relation.range_token

type request =
  | Describe
  | Check_shape
  | Install of string
  | Index_probe of { leaf : string; attr : string; key : string option }
  | Filter of { leaf : string; ops : filter_op list }
  | Fetch_rows of { leaf : string; attrs : string list; slots : int list }
  | Fetch_tids of { leaf : string }
  | Oram_init of { leaf : string; seed : int; block_size : int; blocks : string array }
  | Oram_read of { leaf : string; slot : int }
  | Phe_sum of { leaf : string; attr : string }
  | Group_sum of { leaf : string; group_by : string; sum : string }
  | Q_batch of { queries : (string * filter_op list) list list }
  | Q_store_stats

(* Per-column value-class histogram of one leaf, as the server sees it:
   each class is (digest of the canonical ciphertext, class size), sorted
   by digest so the merged form is byte-deterministic. Only columns with
   a canonical (deterministic) ciphertext appear — exactly the columns
   whose equality structure the store image already reveals. *)
type attr_stats = { a_attr : string; a_classes : (string * int) list }
type leaf_stats = { s_label : string; s_rows : int; s_attrs : attr_stats list }

type response =
  | R_unit
  | R_described of { relation_name : string; leaves : (string * int) list }
  | R_slots of int list option
  | R_mask of { mask : bool array; scanned : int }
  | R_rows of Enc_relation.cell array array
  | R_tids of string array
  | R_oram of { block : string option; touches : int }
  | R_nat of Nat.t
  | R_groups of (Enc_relation.cell * Nat.t) list
  | R_error of { not_found : bool; msg : string }
  | R_corrupt of Integrity.corruption
  | R_batch of { results : (bool array * int) list list }
  | R_busy
  | R_store_stats of { leaves : leaf_stats list }

let w_eq_token buf (tok : Enc_relation.eq_token) =
  match tok with
  | Enc_relation.Eq_plain v ->
    w_u8 buf 0;
    w_string buf (Value.encode v)
  | Enc_relation.Eq_det b ->
    w_u8 buf 1;
    w_string buf b
  | Enc_relation.Eq_ord o ->
    w_u8 buf 2;
    w_int buf o
  | Enc_relation.Eq_ore o ->
    w_u8 buf 3;
    let syms = Ore.symbols o in
    w_int buf (Array.length syms);
    Array.iter (fun s -> w_u8 buf s) syms

let r_eq_token c : Enc_relation.eq_token =
  match r_u8 c with
  | 0 -> Enc_relation.Eq_plain (Value.decode (r_string c))
  | 1 -> Enc_relation.Eq_det (r_string c)
  | 2 -> Enc_relation.Eq_ord (r_int c)
  | 3 ->
    let n = r_count c in
    Enc_relation.Eq_ore (Ore.of_symbols (Array.init n (fun _ -> r_u8 c)))
  | n -> fail (Printf.sprintf "unknown eq-token tag %d" n)

let w_range_token buf (tok : Enc_relation.range_token) =
  match tok with
  | Enc_relation.Rng_plain (lo, hi) ->
    w_u8 buf 0;
    w_string buf (Value.encode lo);
    w_string buf (Value.encode hi)
  | Enc_relation.Rng_ord (lo, hi) ->
    w_u8 buf 1;
    w_int buf lo;
    w_int buf hi
  | Enc_relation.Rng_ore (lo, hi) ->
    w_u8 buf 2;
    List.iter
      (fun o ->
        let syms = Ore.symbols o in
        w_int buf (Array.length syms);
        Array.iter (fun s -> w_u8 buf s) syms)
      [ lo; hi ]

let r_range_token c : Enc_relation.range_token =
  match r_u8 c with
  | 0 ->
    let lo = Value.decode (r_string c) in
    Enc_relation.Rng_plain (lo, Value.decode (r_string c))
  | 1 ->
    let lo = r_int c in
    Enc_relation.Rng_ord (lo, r_int c)
  | 2 ->
    let symbols () =
      let n = r_count c in
      Ore.of_symbols (Array.init n (fun _ -> r_u8 c))
    in
    let lo = symbols () in
    Enc_relation.Rng_ore (lo, symbols ())
  | n -> fail (Printf.sprintf "unknown range-token tag %d" n)

let w_filter_op buf = function
  | F_slots slots ->
    w_u8 buf 0;
    w_list w_int buf slots
  | F_eq (attr, tok) ->
    w_u8 buf 1;
    w_string buf attr;
    w_eq_token buf tok
  | F_range (attr, tok) ->
    w_u8 buf 2;
    w_string buf attr;
    w_range_token buf tok

let filter_op_to_string op =
  let buf = Buffer.create 64 in
  w_filter_op buf op;
  Buffer.contents buf

let request_tag = function
  | Describe -> 0
  | Check_shape -> 1
  | Install _ -> 2
  | Index_probe _ -> 3
  | Filter _ -> 4
  | Fetch_rows _ -> 5
  | Fetch_tids _ -> 6
  | Oram_init _ -> 7
  | Oram_read _ -> 8
  | Phe_sum _ -> 9
  | Group_sum _ -> 10
  | Q_batch _ -> 11
  | Q_store_stats -> 12

let response_tag = function
  | R_unit -> 0
  | R_described _ -> 1
  | R_slots _ -> 2
  | R_mask _ -> 3
  | R_rows _ -> 4
  | R_tids _ -> 5
  | R_oram _ -> 6
  | R_nat _ -> 7
  | R_groups _ -> 8
  | R_error _ -> 9
  | R_corrupt _ -> 10
  | R_batch _ -> 11
  | R_busy -> 12
  | R_store_stats _ -> 13

let r_filter_op c =
  match r_u8 c with
  | 0 -> F_slots (r_list r_int c)
  | 1 ->
    let attr = r_string c in
    F_eq (attr, r_eq_token c)
  | 2 ->
    let attr = r_string c in
    F_range (attr, r_range_token c)
  | n -> fail (Printf.sprintf "unknown filter-op tag %d" n)

let w_request buf = function
  | Describe -> w_u8 buf 0
  | Check_shape -> w_u8 buf 1
  | Install image ->
    w_u8 buf 2;
    w_string buf image
  | Index_probe { leaf; attr; key } ->
    w_u8 buf 3;
    w_string buf leaf;
    w_string buf attr;
    w_option w_string buf key
  | Filter { leaf; ops } ->
    w_u8 buf 4;
    w_string buf leaf;
    w_list w_filter_op buf ops
  | Fetch_rows { leaf; attrs; slots } ->
    w_u8 buf 5;
    w_string buf leaf;
    w_list w_string buf attrs;
    w_list w_int buf slots
  | Fetch_tids { leaf } ->
    w_u8 buf 6;
    w_string buf leaf
  | Oram_init { leaf; seed; block_size; blocks } ->
    w_u8 buf 7;
    w_string buf leaf;
    w_int buf seed;
    w_int buf block_size;
    w_array w_string buf blocks
  | Oram_read { leaf; slot } ->
    w_u8 buf 8;
    w_string buf leaf;
    w_int buf slot
  | Phe_sum { leaf; attr } ->
    w_u8 buf 9;
    w_string buf leaf;
    w_string buf attr
  | Group_sum { leaf; group_by; sum } ->
    w_u8 buf 10;
    w_string buf leaf;
    w_string buf group_by;
    w_string buf sum
  | Q_batch { queries } ->
    w_u8 buf 11;
    w_list
      (w_list (fun buf (leaf, ops) ->
           w_string buf leaf;
           w_list w_filter_op buf ops))
      buf queries
  | Q_store_stats -> w_u8 buf 12

let r_request c =
  match r_u8 c with
  | 0 -> Describe
  | 1 -> Check_shape
  | 2 -> Install (r_string c)
  | 3 ->
    let leaf = r_string c in
    let attr = r_string c in
    Index_probe { leaf; attr; key = r_option r_string c }
  | 4 ->
    let leaf = r_string c in
    Filter { leaf; ops = r_list r_filter_op c }
  | 5 ->
    let leaf = r_string c in
    let attrs = r_list r_string c in
    Fetch_rows { leaf; attrs; slots = r_list r_int c }
  | 6 -> Fetch_tids { leaf = r_string c }
  | 7 ->
    let leaf = r_string c in
    let seed = r_int c in
    let block_size = r_int c in
    Oram_init { leaf; seed; block_size; blocks = r_array r_string c }
  | 8 ->
    let leaf = r_string c in
    Oram_read { leaf; slot = r_int c }
  | 9 ->
    let leaf = r_string c in
    Phe_sum { leaf; attr = r_string c }
  | 10 ->
    let leaf = r_string c in
    let group_by = r_string c in
    Group_sum { leaf; group_by; sum = r_string c }
  | 11 ->
    Q_batch
      { queries =
          r_list
            (r_list (fun c ->
                 let leaf = r_string c in
                 (leaf, r_list r_filter_op c)))
            c }
  | 12 -> Q_store_stats
  | n -> fail (Printf.sprintf "unknown request tag %d" n)

let w_attr_stats buf (a : attr_stats) =
  w_string buf a.a_attr;
  w_list
    (fun buf (digest, n) ->
      w_string buf digest;
      w_int buf n)
    buf a.a_classes

let r_attr_stats c =
  let a_attr = r_string c in
  { a_attr;
    a_classes =
      r_list
        (fun c ->
          let digest = r_string c in
          (digest, r_int c))
        c }

let w_leaf_stats buf (l : leaf_stats) =
  w_string buf l.s_label;
  w_int buf l.s_rows;
  w_list w_attr_stats buf l.s_attrs

let r_leaf_stats c =
  let s_label = r_string c in
  let s_rows = r_int c in
  { s_label; s_rows; s_attrs = r_list r_attr_stats c }

let w_corruption buf (c : Integrity.corruption) =
  w_string buf c.Integrity.where;
  w_option w_string buf c.Integrity.leaf;
  w_option w_string buf c.Integrity.attr;
  w_string buf c.Integrity.detail

let r_corruption c : Integrity.corruption =
  let where = r_string c in
  let leaf = r_option r_string c in
  let attr = r_option r_string c in
  { Integrity.where; leaf; attr; detail = r_string c }

let w_nat buf n = w_string buf (Nat.to_bytes_be n)
let r_nat c = Nat.of_bytes_be (r_string c)

let w_response buf = function
  | R_unit -> w_u8 buf 0
  | R_described { relation_name; leaves } ->
    w_u8 buf 1;
    w_string buf relation_name;
    w_list
      (fun buf (label, rows) ->
        w_string buf label;
        w_int buf rows)
      buf leaves
  | R_slots slots ->
    w_u8 buf 2;
    w_option (w_list w_int) buf slots
  | R_mask { mask; scanned } ->
    w_u8 buf 3;
    w_bools buf mask;
    w_int buf scanned
  | R_rows cols ->
    w_u8 buf 4;
    w_array (w_array w_cell) buf cols
  | R_tids tids ->
    w_u8 buf 5;
    w_array w_string buf tids
  | R_oram { block; touches } ->
    w_u8 buf 6;
    w_option w_string buf block;
    w_int buf touches
  | R_nat n ->
    w_u8 buf 7;
    w_nat buf n
  | R_groups groups ->
    w_u8 buf 8;
    w_list
      (fun buf (cell, n) ->
        w_cell buf cell;
        w_nat buf n)
      buf groups
  | R_error { not_found; msg } ->
    w_u8 buf 9;
    w_u8 buf (if not_found then 1 else 0);
    w_string buf msg
  | R_corrupt c ->
    w_u8 buf 10;
    w_corruption buf c
  | R_batch { results } ->
    w_u8 buf 11;
    w_list
      (w_list (fun buf (mask, scanned) ->
           w_bools buf mask;
           w_int buf scanned))
      buf results
  | R_busy -> w_u8 buf 12
  | R_store_stats { leaves } ->
    w_u8 buf 13;
    w_list w_leaf_stats buf leaves

let r_response c =
  match r_u8 c with
  | 0 -> R_unit
  | 1 ->
    let relation_name = r_string c in
    let leaves =
      r_list
        (fun c ->
          let label = r_string c in
          (label, r_int c))
        c
    in
    R_described { relation_name; leaves }
  | 2 -> R_slots (r_option (r_list r_int) c)
  | 3 ->
    let mask = r_bools c in
    R_mask { mask; scanned = r_int c }
  | 4 -> R_rows (r_array (r_array r_cell) c)
  | 5 -> R_tids (r_array r_string c)
  | 6 ->
    let block = r_option r_string c in
    R_oram { block; touches = r_int c }
  | 7 -> R_nat (r_nat c)
  | 8 ->
    R_groups
      (r_list
         (fun c ->
           let cell = r_cell c in
           (cell, r_nat c))
         c)
  | 9 ->
    let not_found = r_u8 c = 1 in
    R_error { not_found; msg = r_string c }
  | 10 -> R_corrupt (r_corruption c)
  | 11 ->
    R_batch
      { results =
          r_list
            (r_list (fun c ->
                 let mask = r_bools c in
                 (mask, r_int c)))
            c }
  | 12 -> R_busy
  | 13 -> R_store_stats { leaves = r_list r_leaf_stats c }
  | n -> fail (Printf.sprintf "unknown response tag %d" n)

let msg_to_string w x =
  let buf = Buffer.create 256 in
  Buffer.add_string buf msg_magic;
  w_u8 buf msg_version;
  w buf x;
  Buffer.contents buf

let msg_of_string r data =
  let c = { data; pos = 0 } in
  if String.length data < 5 || String.sub data 0 4 <> msg_magic then fail "bad message magic";
  c.pos <- 4;
  let v = r_u8 c in
  if v <> msg_version then fail (Printf.sprintf "unsupported message version %d" v);
  let x = r c in
  if c.pos <> String.length data then fail "trailing bytes";
  x

let request_to_string r = msg_to_string w_request r
let request_of_string s = msg_of_string r_request s
let response_to_string r = msg_to_string w_response r
let response_of_string s = msg_of_string r_response s

(* --- manifest primitives ---------------------------------------------------------- *)

module Prim = struct
  type nonrec cursor = cursor

  let w_u8 = w_u8
  let w_int = w_int
  let w_string = w_string
  let w_nat = w_nat
  let cursor data = { data; pos = 0 }
  let r_u8 = r_u8
  let r_int = r_int
  let r_string = r_string
  let r_nat = r_nat
  let r_count = r_count

  let expect_end c =
    if c.pos <> String.length c.data then fail "trailing bytes"
end

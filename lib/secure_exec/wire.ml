open Snf_relational
module Scheme = Snf_crypto.Scheme
module Ore = Snf_crypto.Ore
module Nat = Snf_bignum.Nat

let magic = "SNFE"
let version = 1

(* --- primitive writers ---------------------------------------------------- *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_int buf n =
  (* 63-bit non-negative, 8 bytes LE *)
  if n < 0 then invalid_arg "Wire: negative integer";
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

(* --- primitive readers ----------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

let fail msg = invalid_arg ("Wire: " ^ msg)

let r_u8 c =
  if c.pos >= String.length c.data then fail "truncated";
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_int c =
  if c.pos + 8 > String.length c.data then fail "truncated";
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code c.data.[c.pos + i]
  done;
  c.pos <- c.pos + 8;
  if !v < 0 then fail "negative integer";
  !v

let r_string c =
  let n = r_int c in
  if c.pos + n > String.length c.data then fail "truncated string";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* --- scheme and cell codecs -------------------------------------------------- *)

let scheme_tag = function
  | Scheme.Plain -> 0
  | Scheme.Ndet -> 1
  | Scheme.Det -> 2
  | Scheme.Ope -> 3
  | Scheme.Ore -> 4
  | Scheme.Phe -> 5

let scheme_of_tag = function
  | 0 -> Scheme.Plain
  | 1 -> Scheme.Ndet
  | 2 -> Scheme.Det
  | 3 -> Scheme.Ope
  | 4 -> Scheme.Ore
  | 5 -> Scheme.Phe
  | n -> fail (Printf.sprintf "unknown scheme tag %d" n)

let w_cell buf (cell : Enc_relation.cell) =
  match cell with
  | Enc_relation.C_plain v ->
    w_u8 buf 0;
    w_string buf (Value.encode v)
  | Enc_relation.C_bytes b ->
    w_u8 buf 1;
    w_string buf b
  | Enc_relation.C_ord { ord; payload } ->
    w_u8 buf 2;
    w_int buf ord;
    w_string buf payload
  | Enc_relation.C_ore { ore; payload } ->
    w_u8 buf 3;
    let syms = Ore.symbols ore in
    w_int buf (Array.length syms);
    Array.iter (fun s -> w_u8 buf s) syms;
    w_string buf payload
  | Enc_relation.C_nat n ->
    w_u8 buf 4;
    w_string buf (Nat.to_bytes_be n)

let r_cell c : Enc_relation.cell =
  match r_u8 c with
  | 0 -> Enc_relation.C_plain (Value.decode (r_string c))
  | 1 -> Enc_relation.C_bytes (r_string c)
  | 2 ->
    let ord = r_int c in
    Enc_relation.C_ord { ord; payload = r_string c }
  | 3 ->
    let n = r_int c in
    let syms = Array.init n (fun _ -> r_u8 c) in
    Enc_relation.C_ore { ore = Ore.of_symbols syms; payload = r_string c }
  | 4 -> Enc_relation.C_nat (Nat.of_bytes_be (r_string c))
  | n -> fail (Printf.sprintf "unknown cell tag %d" n)

(* --- top level ----------------------------------------------------------------- *)

let to_string (t : Enc_relation.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  w_u8 buf version;
  w_string buf t.Enc_relation.relation_name;
  w_string buf (Nat.to_bytes_be t.Enc_relation.paillier_public.Snf_crypto.Paillier.n);
  w_int buf (List.length t.Enc_relation.leaves);
  List.iter
    (fun (l : Enc_relation.enc_leaf) ->
      w_string buf l.Enc_relation.label;
      w_int buf l.Enc_relation.row_count;
      Array.iter (w_string buf) l.Enc_relation.tids;
      w_int buf (List.length l.Enc_relation.columns);
      List.iter
        (fun (col : Enc_relation.enc_column) ->
          w_string buf col.Enc_relation.attr;
          w_u8 buf (scheme_tag col.Enc_relation.scheme);
          Array.iter (w_cell buf) col.Enc_relation.cells)
        l.Enc_relation.columns)
    t.Enc_relation.leaves;
  Buffer.contents buf

let of_string data =
  let c = { data; pos = 0 } in
  if String.length data < 5 || String.sub data 0 4 <> magic then fail "bad magic";
  c.pos <- 4;
  let v = r_u8 c in
  if v <> version then fail (Printf.sprintf "unsupported version %d" v);
  let relation_name = r_string c in
  let n = Nat.of_bytes_be (r_string c) in
  let paillier_public = Snf_crypto.Paillier.public_of_n n in
  let leaf_count = r_int c in
  let leaves =
    List.init leaf_count (fun _ ->
        let label = r_string c in
        let row_count = r_int c in
        let tids = Array.init row_count (fun _ -> r_string c) in
        let col_count = r_int c in
        let columns =
          List.init col_count (fun _ ->
              let attr = r_string c in
              let scheme = scheme_of_tag (r_u8 c) in
              let cells = Array.init row_count (fun _ -> r_cell c) in
              { Enc_relation.attr; scheme; cells })
        in
        { Enc_relation.label; row_count; tids; columns })
  in
  if c.pos <> String.length data then fail "trailing bytes";
  { Enc_relation.relation_name;
    leaves;
    paillier_public;
    index_cache = Hashtbl.create 8 }

let save path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

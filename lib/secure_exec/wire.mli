(** Binary serialization of the outsourced (server-side) database and of
    the client/server message protocol.

    Two artifacts share the primitive discipline (little-endian 63-bit
    non-negative integers, length-prefixed strings, tagged unions,
    trailing-bytes check):

    {ul
    {- the {e store image} (magic ["SNFE"]): a self-describing, versioned
       binary image of [Enc_relation.t] — the artifact the owner actually
       ships to the cloud. Contains only ciphertexts, public parameters
       and structural metadata, no key material. The lazily built
       equality indexes are not serialized; the server can always rebuild
       them from what the image already reveals (the disk backend proves
       this claim).}
    {- the {e message codec} (magic ["SNFM"]): every request/response
       crossing the [Server_api] trust boundary. The serialized bytes ARE
       the access-pattern leakage the paper reasons about — what a
       network observer (or the honest-but-curious server) sees.}}

    All decoders reject malformed input with a typed [Invalid_argument]
    (message ["Wire: ..."]) — never a crash, never a silently wrong
    value. *)

val to_string : Enc_relation.t -> string

val of_string : string -> Enc_relation.t
(** @raise Invalid_argument on bad magic, unknown version or truncated /
    malformed input. *)

val save : string -> Enc_relation.t -> unit
val load : string -> Enc_relation.t

val leaf_to_string : Enc_relation.enc_leaf -> string
(** One leaf in store-image framing (no magic) — the per-leaf file unit
    of the disk backend, so leaves page in independently. *)

val leaf_of_string : string -> Enc_relation.enc_leaf
(** @raise Invalid_argument on truncated / malformed input. *)

(** {1 Message protocol}

    The typed grammar of the client/server boundary; see [Server_api] for
    the operational semantics and DESIGN.md §Server boundary for the
    per-message leakage account. *)

type filter_op =
  | F_slots of int list
      (** restrict to these slots (an index-probe result); leaks the
          matching row set, exactly like the probe already did *)
  | F_eq of string * Enc_relation.eq_token
  | F_range of string * Enc_relation.range_token

type request =
  | Describe  (** structural metadata: leaf labels and row counts *)
  | Check_shape  (** ask the server to validate stored shapes *)
  | Install of string  (** ship a store image ({!to_string}) *)
  | Index_probe of { leaf : string; attr : string; key : string option }
      (** probe the lazily built equality index; [key = None] still forces
          the build attempt, keeping index accounting backend-independent *)
  | Filter of { leaf : string; ops : filter_op list }
  | Fetch_rows of { leaf : string; attrs : string list; slots : int list }
  | Fetch_tids of { leaf : string }
  | Oram_init of { leaf : string; seed : int; block_size : int; blocks : string array }
      (** install sealed blocks into a fresh per-connection Path ORAM *)
  | Oram_read of { leaf : string; slot : int }
  | Phe_sum of { leaf : string; attr : string }
  | Group_sum of { leaf : string; group_by : string; sum : string }
  | Q_batch of { queries : (string * filter_op list) list list }
      (** K filter workloads in one round trip: the outer list has one
          entry per query, each an ordered [(leaf, ops)] list. The server
          answers all of them against a single pass over the touched
          leaves; what it sees is the {e union} of K token sets under one
          request — which queries arrived together, but not the
          inter-query timing K singles would leak. Decoding is bounded by
          the same remaining-bytes [r_count] discipline as every other
          list, so a garbled count cannot force a giant allocation. *)
  | Q_store_stats
      (** ask for {!leaf_stats} of every stored leaf — the planner's
          statistics feed. The answer is computed entirely from what the
          store image already reveals (row counts and the equality
          structure of canonical ciphertexts), so serving it adds zero
          leakage; asking it reveals only that the client plans. *)

(** Per-column value-class histogram of one leaf, exactly as the server
    sees it: each class is [(digest of the canonical ciphertext, class
    size)], sorted by digest so shard-merged histograms are
    byte-deterministic. Only columns with a canonical (deterministic)
    ciphertext carry classes — the columns whose equality structure the
    image reveals anyway. *)
type attr_stats = { a_attr : string; a_classes : (string * int) list }

type leaf_stats = { s_label : string; s_rows : int; s_attrs : attr_stats list }

type response =
  | R_unit
  | R_described of { relation_name : string; leaves : (string * int) list }
  | R_slots of int list option
      (** [None]: no canonical index exists for that column *)
  | R_mask of { mask : bool array; scanned : int }
      (** bit-packed on the wire; [scanned] = cells the server touched *)
  | R_rows of Enc_relation.cell array array
      (** one inner array per requested attribute, in request order *)
  | R_tids of string array
  | R_oram of { block : string option; touches : int }
      (** [touches] is the ORAM's cumulative bucket-touch count *)
  | R_nat of Snf_bignum.Nat.t
  | R_groups of (Enc_relation.cell * Snf_bignum.Nat.t) list
  | R_error of { not_found : bool; msg : string }
      (** surfaced client-side as [Not_found] / [Invalid_argument] *)
  | R_corrupt of Integrity.corruption
      (** surfaced client-side as [Integrity.Corruption] *)
  | R_batch of { results : (bool array * int) list list }
      (** positional answers to {!Q_batch}: per query, per [(leaf, ops)]
          entry, the bit-packed match mask and the scanned-cell count —
          the same payload K [R_mask] responses would carry, split back
          out by the client *)
  | R_busy
      (** admission control: the server's bounded request queue is past
          high-water and this request was rejected without being
          executed. Purely a transport-level signal — in-process
          backends never send it. Surfaced client-side as the typed,
          retryable {!Server_api.Busy}. *)
  | R_store_stats of { leaves : leaf_stats list }
      (** answer to {!Q_store_stats}, one entry per stored leaf in
          describe order *)

val request_to_string : request -> string

val request_of_string : string -> request
(** @raise Invalid_argument on bad magic, unknown version or truncated /
    malformed input. *)

val response_to_string : response -> string

val response_of_string : string -> response
(** @raise Invalid_argument as {!request_of_string}. *)

val request_tag : request -> int
val response_tag : response -> int
(** The constructor's wire tag (requests 0–12, responses 0–13),
    mirrored in SNFT trace events. *)

val filter_op_to_string : filter_op -> string
(** Canonical serialized bytes of one filter op (no magic/version) — the
    stable identity the wire-trace recorder fingerprints tokens by. *)

(** Low-level primitives, shared with the disk backend's manifest codec.
    Same conventions as the store image; readers raise [Invalid_argument]
    on malformed input. *)
module Prim : sig
  val w_u8 : Buffer.t -> int -> unit
  val w_int : Buffer.t -> int -> unit
  val w_string : Buffer.t -> string -> unit
  val w_nat : Buffer.t -> Snf_bignum.Nat.t -> unit

  type cursor

  val cursor : string -> cursor
  val r_u8 : cursor -> int
  val r_int : cursor -> int
  val r_string : cursor -> string
  val r_nat : cursor -> Snf_bignum.Nat.t

  val r_count : cursor -> int
  (** Like {!r_int} but additionally bounded by the bytes remaining —
      the safe way to read an element count before allocating. *)

  val expect_end : cursor -> unit
end

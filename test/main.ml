let () =
  Alcotest.run "snf"
    [ ("nat", Test_nat.suite);
      ("crypto", Test_crypto.suite);
      ("relational", Test_relational.suite);
      ("deps", Test_deps.suite);
      ("leakage", Test_leakage.suite);
      ("closure", Test_closure.suite);
      ("partition", Test_partition.suite);
      ("strategy", Test_strategy.suite);
      ("audit-maximal", Test_audit_maximal.suite);
      ("horizontal-quantify", Test_horizontal_quantify.suite);
      ("oblivious", Test_oblivious.suite);
      ("exec", Test_exec.suite);
      ("executor", Test_executor.suite);
      ("parallel", Test_parallel.suite);
      ("workload-attack", Test_workload_attack.suite);
      ("multi", Test_multi.suite);
      ("dynamic", Test_dynamic.suite);
      ("index", Test_index.suite);
      ("spec-viz", Test_spec_viz.suite);
      ("horizontal-system", Test_horizontal_system.suite);
      ("wire", Test_wire.suite);
      ("dp-ope", Test_dp_ope.suite);
      ("experiments", Test_experiments.suite);
      ("ledger-exhaustive", Test_ledger_exhaustive.suite);
      ("access-pattern", Test_access_pattern.suite);
      ("group-sum", Test_group_sum.suite);
      ("cross-properties", Test_cross_properties.suite);
      ("chase-failures", Test_chase_failures.suite);
      ("explain", Test_explain.suite);
      ("obs", Test_obs.suite);
      ("nat-edge", Test_nat_edge.suite);
      ("ope-order", Test_ope_order.suite);
      ("executor-edge", Test_executor_edge.suite);
      ("check", Test_check.suite);
      ("fault", Test_fault.suite);
      ("cli", Test_cli.suite) ]

(* Backend invisibility, pinned end to end: the in-memory and disk
   backends must be indistinguishable through the trust boundary — same
   answer bags, same exec.query.* accounting, byte-identical wire traffic
   — and the disk backend's lifecycle (temp dir, demand paging, cleanup)
   must leave no residue. *)

open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme
module Metrics = Snf_obs.Metrics

let t name f = Alcotest.test_case name `Quick f

(* Every scheme, several leaves: point predicates over DET/OPE columns,
   projections that force cross-leaf reconstruction. *)
let owner ?backend () =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "id"; Attribute.text "note"; Attribute.text "code";
           Attribute.int "score"; Attribute.int "level"; Attribute.int "amount" ])
      (List.init 12 (fun i ->
           [| Value.Int i; Value.Text (Printf.sprintf "n%d" i);
              Value.Text (Printf.sprintf "c%d" (i mod 3));
              Value.Int (i * 7 mod 13); Value.Int (i mod 4); Value.Int (i * 10) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("id", Scheme.Plain); ("note", Scheme.Ndet); ("code", Scheme.Det);
        ("score", Scheme.Ope); ("level", Scheme.Ore); ("amount", Scheme.Phe) ]
  in
  let g = Snf_deps.Dep_graph.create (Snf_core.Policy.attrs policy) in
  System.outsource ?backend ~name:"backend" ~graph:g r policy

let queries =
  [ Query.point ~select:[ "note" ] [ ("code", Value.Text "c1") ];
    Query.point ~select:[ "note"; "score" ] [ ("code", Value.Text "c0") ];
    Query.point ~select:[ "id"; "note" ] [ ("code", Value.Text "c2") ];
    Query.point ~select:[ "note" ] [ ("code", Value.Text "nowhere") ] ]

let run_q ?mode ?use_index o q =
  match System.query ?mode ?use_index o q with
  | Ok (ans, tr) -> (Helpers.bag ans, tr)
  | Error e -> Alcotest.fail e

(* The heart of the tentpole's acceptance: mem and disk twins of one store
   agree on answers, counters and traffic for every reconstruction mode,
   with and without the equality index. *)
let test_mem_disk_parity () =
  let mem = owner () in
  let disk = System.with_backend mem `Disk in
  Fun.protect
    ~finally:(fun () -> System.release disk; System.release mem)
  @@ fun () ->
  Alcotest.(check string) "twin is disk-bound" "disk"
    (System.backend_kind_name (System.backend disk));
  List.iter
    (fun (mode, use_index, tag) ->
      List.iteri
        (fun i q ->
          let name fmt = Printf.sprintf "%s q%d: %s" tag i fmt in
          let b0, t0 = run_q ~mode ~use_index mem q in
          let b1, t1 = run_q ~mode ~use_index disk q in
          Alcotest.(check bool) (name "same answer bag") true (b0 = b1);
          Alcotest.(check bool) (name "matches the plaintext reference") true
            (b0 = Helpers.bag (System.reference mem q));
          List.iter
            (fun (what, a, b) -> Alcotest.(check int) (name what) a b)
            [ ("scanned cells", t0.Executor.scanned_cells, t1.Executor.scanned_cells);
              ("index probes", t0.Executor.index_probes, t1.Executor.index_probes);
              ("comparisons", t0.Executor.comparisons, t1.Executor.comparisons);
              ("rows processed", t0.Executor.rows_processed, t1.Executor.rows_processed);
              ("result rows", t0.Executor.result_rows, t1.Executor.result_rows);
              ("wire requests", t0.Executor.wire_requests, t1.Executor.wire_requests);
              ("wire bytes up", t0.Executor.wire_bytes_up, t1.Executor.wire_bytes_up);
              ("wire bytes down", t0.Executor.wire_bytes_down, t1.Executor.wire_bytes_down) ])
        queries)
    [ (`Sort_merge, false, "sort-merge");
      (`Sort_merge, true, "sort-merge+index");
      (`Oram, false, "oram");
      (`Binning 4, false, "binning") ]

(* Homomorphic aggregation crosses the same boundary: identical sums and
   grouped sums from both backends. *)
let test_aggregation_parity () =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.text "dept"; Attribute.int "salary"; Attribute.text "name" ])
      [ [| Value.Text "eng"; Value.Int 100; Value.Text "a" |];
        [| Value.Text "eng"; Value.Int 150; Value.Text "b" |];
        [| Value.Text "hr"; Value.Int 90; Value.Text "c" |];
        [| Value.Text "ops"; Value.Int 75; Value.Text "d" |] ]
  in
  let policy =
    Snf_core.Policy.create
      [ ("dept", Scheme.Det); ("salary", Scheme.Phe); ("name", Scheme.Ndet) ]
  in
  let g = Snf_deps.Dep_graph.create [ "dept"; "salary"; "name" ] in
  let mem = System.outsource ~name:"backend-agg" ~graph:g r policy in
  let disk = System.with_backend mem `Disk in
  Fun.protect
    ~finally:(fun () -> System.release disk; System.release mem)
  @@ fun () ->
  let leaf =
    (List.find
       (fun (l : Snf_core.Partition.leaf) -> Snf_core.Partition.mem_leaf l "salary")
       mem.System.plan.Snf_core.Normalizer.representation)
      .Snf_core.Partition.label
  in
  Alcotest.(check int) "sum agrees across backends"
    (System.sum mem ~leaf ~attr:"salary")
    (System.sum disk ~leaf ~attr:"salary");
  Alcotest.(check int) "sum is the plaintext total" 415
    (System.sum disk ~leaf ~attr:"salary");
  let gs o =
    System.group_sum o ~leaf ~group_by:"dept" ~sum:"salary"
    |> List.map (fun (v, s) -> (Value.to_string v, s))
  in
  Alcotest.(check (list (pair string int))) "group sums agree across backends"
    (gs mem) (gs disk);
  Alcotest.(check (list (pair string int))) "group sums are correct"
    [ ("eng", 250); ("hr", 90); ("ops", 75) ] (gs disk)

(* Per-query trace wire fields are exactly the delta of the process-wide
   exec.wire.* counters — the two accountings cannot drift apart. *)
let test_trace_matches_global_counters () =
  let o = owner ~backend:`Disk () in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let read () =
    ( Metrics.value (Metrics.counter "exec.wire.requests"),
      Metrics.value (Metrics.counter "exec.wire.bytes_up"),
      Metrics.value (Metrics.counter "exec.wire.bytes_down") )
  in
  List.iter
    (fun q ->
      let r0, u0, d0 = read () in
      let _, tr = run_q o q in
      let r1, u1, d1 = read () in
      Alcotest.(check int) "trace requests = counter delta"
        tr.Executor.wire_requests (r1 - r0);
      Alcotest.(check int) "trace bytes up = counter delta"
        tr.Executor.wire_bytes_up (u1 - u0);
      Alcotest.(check int) "trace bytes down = counter delta"
        tr.Executor.wire_bytes_down (d1 - d0);
      Alcotest.(check bool) "a query is never free" true
        (tr.Executor.wire_requests > 0 && tr.Executor.wire_bytes_down > 0))
    queries

(* Disk backend lifecycle: fresh temp dir, install resets residency,
   leaves page in on demand, close removes everything. *)
let test_disk_lifecycle () =
  let o = owner () in
  let b = Backend_disk.create_temp () in
  let dir = Backend_disk.dir b in
  Alcotest.(check bool) "temp dir exists" true
    (Sys.file_exists dir && Sys.is_directory dir);
  let conn = Server_api.connect (module Backend_disk) b in
  Server_api.install conn (Wire.to_string o.System.enc);
  Alcotest.(check (list string)) "install leaves nothing resident" []
    (Backend_disk.resident_labels b);
  let _, leaves = Server_api.describe conn in
  Alcotest.(check bool) "describe needs no paging" true
    (Backend_disk.resident_labels b = [] && leaves <> []);
  let first = fst (List.hd leaves) in
  ignore (Server_api.fetch_tids conn ~leaf:first);
  Alcotest.(check (list string)) "exactly the touched leaf is resident"
    [ first ] (Backend_disk.resident_labels b);
  Alcotest.(check bool) "store files landed on disk" true
    (Array.length (Sys.readdir dir) > 1);
  Server_api.close conn;
  Alcotest.(check bool) "close removes the owned temp dir" false
    (Sys.file_exists dir)

(* Release is idempotent and the next query transparently rebinds —
   an owner handle survives its connection. *)
let test_release_and_rebind () =
  let o = owner ~backend:`Disk () in
  let q = List.hd queries in
  let b0, _ = run_q o q in
  System.release o;
  System.release o;
  let b1, _ = run_q o q in
  Alcotest.(check bool) "same answers after rebind" true (b0 = b1);
  Alcotest.(check bool) "rebound connection carries traffic" true
    ((System.wire_stats o).Server_api.requests > 0);
  System.release o

(* Ciphertexts (and so the serialized traffic) are independent of the
   domain fan-out — the wire is deterministic under parallelism. *)
let test_wire_deterministic_across_domains () =
  let saved = Parallel.domain_count () in
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved)
  @@ fun () ->
  let profile domains =
    Parallel.set_domain_count domains;
    let o = owner ~backend:`Disk () in
    Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
    let install = System.wire_stats o in
    List.map
      (fun q ->
        let bag, tr = run_q o q in
        (bag, tr.Executor.wire_requests, tr.Executor.wire_bytes_up,
         tr.Executor.wire_bytes_down))
      queries
    |> fun per_query -> (install.Server_api.bytes_up, per_query)
  in
  let p1 = profile 1 and p4 = profile 4 in
  Alcotest.(check bool) "install bytes and per-query traffic identical" true
    (p1 = p4)

let suite =
  [ t "mem/disk parity: bags, counters, wire traffic" test_mem_disk_parity;
    t "mem/disk parity: homomorphic aggregation" test_aggregation_parity;
    t "trace wire fields equal global counter deltas" test_trace_matches_global_counters;
    t "disk lifecycle: paging and temp-dir cleanup" test_disk_lifecycle;
    t "release idempotent, queries rebind" test_release_and_rebind;
    t "wire deterministic across domain counts" test_wire_deterministic_across_domains ]

(* Batched execution: [Executor.run_batch] through [System.query_batch].

   The batch contract under test: answers bag-identical to one-at-a-time
   execution in every reconstruction mode and on both backends, positional
   results (planner errors stay in their slot), per-query traces that
   reconcile exactly with the global counter movement of the whole batch,
   mapping-cache amortization across repeats with epoch invalidation, and
   counter totals independent of SNF_DOMAINS. *)

open Snf_relational
module Scheme = Snf_crypto.Scheme
module Metrics = Snf_obs.Metrics
open Snf_exec

let t name f = Alcotest.test_case name `Quick f

let with_domains domains f =
  let saved = Parallel.domain_count () in
  Parallel.set_domain_count domains;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved) f

(* The multi-leaf SNF shape from the obs suite: a ~ b, b ~ c forces
   a/b/c apart, so multi-attribute queries exercise the shared join. *)
let owner ?backend n =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "a"; Attribute.int "b"; Attribute.int "c" ])
      (List.init n (fun i ->
           [| Value.Int (i mod 13); Value.Int (i * 17); Value.Int (i mod 7) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("a", Scheme.Det); ("b", Scheme.Ndet); ("c", Scheme.Ope) ]
  in
  let g = Snf_deps.Dep_graph.create [ "a"; "b"; "c" ] in
  let g = Snf_deps.Dep_graph.declare_dependent g "a" "b" in
  let g = Snf_deps.Dep_graph.declare_dependent g "b" "c" in
  System.outsource ?backend ~name:"batch" ~graph:g r policy

let workload =
  [ Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ];
    Query.point ~select:[ "b"; "c" ] [ ("a", Value.Int 3); ("c", Value.Int 2) ];
    Query.range ~select:[ "a"; "b" ] [ ("c", Value.Int 2, Value.Int 6) ];
    Query.point ~select:[ "a" ] [ ("c", Value.Int 1) ];
    Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ];
    (* repeat *)
    Query.point ~select:[ "b"; "c" ] [ ("a", Value.Int 9); ("c", Value.Int 3) ] ]

let ok_or_fail = function
  | Ok (ans, trace) -> (ans, trace)
  | Error e -> Alcotest.fail e

(* --- batched == sequential, all modes -------------------------------------- *)

let test_batch_matches_sequential () =
  let o = owner 80 in
  List.iter
    (fun mode ->
      let seq = List.map (fun q -> ok_or_fail (System.query ~mode o q)) workload in
      let bat = System.query_batch ~mode o workload in
      Alcotest.(check int) "positional results" (List.length workload)
        (List.length bat);
      List.iteri
        (fun i r ->
          let ans, _ = ok_or_fail r in
          let want, _ = List.nth seq i in
          Helpers.check_same_bag (Printf.sprintf "query %d answer" i) want ans)
        bat)
    [ `Sort_merge; `Oram; `Binning 4 ]

let test_batch_backend_parity () =
  let om = owner 40 in
  let od = owner ~backend:`Disk 40 in
  Fun.protect ~finally:(fun () -> System.release om; System.release od)
  @@ fun () ->
  let bm = System.query_batch om workload in
  let bd = System.query_batch od workload in
  List.iteri
    (fun i (rm, rd) ->
      let am, _ = ok_or_fail rm and ad, _ = ok_or_fail rd in
      Helpers.check_same_bag (Printf.sprintf "query %d mem vs disk" i) am ad)
    (List.combine bm bd)

(* --- positional planner errors ---------------------------------------------- *)

let test_batch_positional_errors () =
  let o = owner 30 in
  let bad = Query.point ~select:[ "zz" ] [ ("a", Value.Int 1) ] in
  let qs = [ List.nth workload 0; bad; List.nth workload 1 ] in
  match System.query_batch o qs with
  | [ Ok (a0, _); Error _; Ok (a2, _) ] ->
    let w0, _ = ok_or_fail (System.query o (List.nth workload 0)) in
    let w2, _ = ok_or_fail (System.query o (List.nth workload 1)) in
    Helpers.check_same_bag "slot 0 unaffected" w0 a0;
    Helpers.check_same_bag "slot 2 unaffected" w2 a2
  | rs ->
    Alcotest.fail
      (Printf.sprintf "expected [Ok; Error; Ok], got %d results (%s)"
         (List.length rs)
         (String.concat ","
            (List.map (function Ok _ -> "ok" | Error _ -> "err") rs)))

(* --- trace/counter reconciliation ------------------------------------------ *)

let test_batch_traces_reconcile () =
  let o = owner 100 in
  let before = Metrics.snapshot () in
  let results = System.query_batch o workload in
  let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
  let d name = Option.value (List.assoc_opt name deltas) ~default:0 in
  let traces = List.map (fun r -> snd (ok_or_fail r)) results in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 traces in
  List.iter
    (fun (name, want) -> Alcotest.(check int) name want (d name))
    [ ("exec.query.count", List.length traces);
      ("exec.query.scanned_cells", sum (fun t -> t.Executor.scanned_cells));
      ("exec.query.index_probes", sum (fun t -> t.Executor.index_probes));
      ("exec.query.comparisons", sum (fun t -> t.Executor.comparisons));
      ("exec.query.rows_processed", sum (fun t -> t.Executor.rows_processed));
      ("exec.query.result_rows", sum (fun t -> t.Executor.result_rows));
      ("exec.wire.requests", sum (fun t -> t.Executor.wire_requests));
      ("exec.wire.bytes_up", sum (fun t -> t.Executor.wire_bytes_up));
      ("exec.wire.bytes_down", sum (fun t -> t.Executor.wire_bytes_down));
      ("exec.batch.count", 1);
      ("exec.batch.queries", List.length workload) ];
  (* The workload has repeated multi-leaf shapes: the shared alignment
     must be built at least once and reused at least once. *)
  Alcotest.(check bool) "shared joins built" true (d "exec.batch.shared_joins" >= 1);
  Alcotest.(check bool) "shared joins reused" true (d "exec.batch.join_reuses" >= 1)

(* --- mapping cache ----------------------------------------------------------- *)

let test_mapping_cache_hits_and_epoch () =
  let o = owner 60 in
  let hits () = Metrics.value (Metrics.counter "exec.mapping_cache.hits") in
  let misses () = Metrics.value (Metrics.counter "exec.mapping_cache.misses") in
  let m0 = misses () in
  let first = System.query_batch o workload in
  Alcotest.(check bool) "first series populates (misses move)" true (misses () > m0);
  let h0 = hits () in
  let second = System.query_batch o workload in
  Alcotest.(check bool) "repeated series hits" true (hits () > h0);
  List.iteri
    (fun i (a, b) ->
      let ra, _ = ok_or_fail a and rb, _ = ok_or_fail b in
      Helpers.check_same_bag (Printf.sprintf "cached run agrees (query %d)" i) ra rb)
    (List.combine first second);
  (* Epoch bump drops every entry: the next run recomputes (misses move
     again) and still answers identically. *)
  Enc_relation.bump_key_epoch o.System.client;
  let m1 = misses () in
  let third = System.query_batch o workload in
  Alcotest.(check bool) "epoch bump invalidates (misses move)" true (misses () > m1);
  List.iteri
    (fun i (a, b) ->
      let ra, _ = ok_or_fail a and rb, _ = ok_or_fail b in
      Helpers.check_same_bag (Printf.sprintf "post-bump run agrees (query %d)" i) ra rb)
    (List.combine first third)

let test_mapping_cache_off_is_silent () =
  let o = owner 40 in
  let hits () = Metrics.value (Metrics.counter "exec.mapping_cache.hits") in
  let misses () = Metrics.value (Metrics.counter "exec.mapping_cache.misses") in
  let h0 = hits () and m0 = misses () in
  let a = System.query_batch ~use_mapping_cache:false o workload in
  let b = System.query_batch ~use_mapping_cache:false o workload in
  Alcotest.(check int) "no hits when disabled" h0 (hits ());
  Alcotest.(check int) "no misses when disabled" m0 (misses ());
  List.iteri
    (fun i (x, y) ->
      let rx, _ = ok_or_fail x and ry, _ = ok_or_fail y in
      Helpers.check_same_bag (Printf.sprintf "uncached runs agree (query %d)" i) rx ry)
    (List.combine a b)

(* --- SNF_DOMAINS determinism ------------------------------------------------- *)

let prop_batch_domain_independent =
  Helpers.qtest ~count:5 "run_batch counters independent of SNF_DOMAINS"
    QCheck2.Gen.(int_range 40 90)
    (fun n ->
      let counted (name, _) =
        (* Timing-derived series vary run to run; everything else must be
           bit-identical across domain counts. *)
        not (String.length name >= 5 && String.sub name 0 5 = "time.")
      in
      let run d =
        with_domains d (fun () ->
            let o = owner n in
            let before = Metrics.snapshot () in
            let results = System.query_batch o workload in
            let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
            let bags =
              List.map
                (function Ok (ans, _) -> Helpers.bag ans | Error e -> [ e ])
                results
            in
            (bags, List.filter counted deltas))
      in
      let b1, d1 = run 1 and b4, d4 = run 4 in
      b1 = b4 && d1 = d4)

let suite =
  [ t "batched equals sequential (all modes)" test_batch_matches_sequential;
    t "batched equals across backends" test_batch_backend_parity;
    t "planner errors stay positional" test_batch_positional_errors;
    t "summed traces reconcile with counter deltas" test_batch_traces_reconcile;
    t "mapping cache: hits on repeats, epoch invalidation"
      test_mapping_cache_hits_and_epoch;
    t "mapping cache off moves no cache counters" test_mapping_cache_off_is_silent;
    prop_batch_domain_independent ]

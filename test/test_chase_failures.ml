open Snf_relational
open Snf_exec

let t name f = Alcotest.test_case name `Quick f

let names = Fd.Names.of_list

(* --- the tableau chase -------------------------------------------------------- *)

let test_chase_classics () =
  let universe = names [ "A"; "B"; "C" ] in
  Alcotest.(check bool) "AB/AC lossless under A->B" true
    (Fd.chase_lossless [ names [ "A"; "B" ]; names [ "A"; "C" ] ] ~universe
       [ Fd.make [ "A" ] [ "B" ] ]);
  Alcotest.(check bool) "AB/BC lossy under A->B alone" false
    (Fd.chase_lossless [ names [ "A"; "B" ]; names [ "B"; "C" ] ] ~universe
       [ Fd.make [ "A" ] [ "B" ] ]);
  Alcotest.(check bool) "AB/BC lossless once B->C" true
    (Fd.chase_lossless [ names [ "A"; "B" ]; names [ "B"; "C" ] ] ~universe
       [ Fd.make [ "B" ] [ "C" ] ]);
  Alcotest.(check bool) "no FDs: only trivial overlap, lossy" false
    (Fd.chase_lossless [ names [ "A"; "B" ]; names [ "B"; "C" ] ] ~universe []);
  Alcotest.(check bool) "single block trivially lossless" true
    (Fd.chase_lossless [ universe ] ~universe []);
  Alcotest.check_raises "coverage enforced"
    (Invalid_argument "Fd.chase_lossless: decomposition does not cover the universe")
    (fun () ->
      ignore (Fd.chase_lossless [ names [ "A"; "B" ] ] ~universe []))

(* Classical theorem: a binary decomposition {X, Y} is lossless iff
   X∩Y -> X\Y or X∩Y -> Y\X. Check the chase against the closure test. *)
let prop_chase_binary_theorem =
  Helpers.qtest ~count:150 "binary chase agrees with the intersection theorem"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 5) (pair (int_bound 4) (int_bound 4)))
        (list_size (int_range 1 4) (int_bound 4))
        (list_size (int_range 1 4) (int_bound 4)))
    (fun (fd_pairs, xs, ys) ->
      let name i = Printf.sprintf "a%d" i in
      let fds = List.map (fun (l, r) -> Fd.make [ name l ] [ name r ]) fd_pairs in
      let x = names (List.map name xs) and y = names (List.map name ys) in
      let universe = Fd.Names.union x y in
      let inter = Fd.Names.inter x y in
      if Fd.Names.is_empty inter || Fd.Names.equal x universe || Fd.Names.equal y universe
      then true (* theorem's precondition: proper overlap; skip degenerate *)
      else begin
        let closure = Fd.closure_of inter fds in
        let expected =
          Fd.Names.subset (Fd.Names.diff x y) closure
          || Fd.Names.subset (Fd.Names.diff y x) closure
        in
        Fd.chase_lossless [ x; y ] ~universe fds = expected
      end)

let prop_superkey_block_lossless =
  Helpers.qtest ~count:100 "a block containing a key makes any decomposition lossless"
    QCheck2.Gen.(list_size (int_range 0 6) (pair (int_bound 4) (int_bound 4)))
    (fun fd_pairs ->
      let name i = Printf.sprintf "a%d" i in
      let fds = List.map (fun (l, r) -> Fd.make [ name l ] [ name r ]) fd_pairs in
      let universe = names (List.init 5 name) in
      (* block 1 = the whole universe (a trivial superkey); block 2 random *)
      Fd.chase_lossless [ universe; names [ name 0; name 1 ] ] ~universe fds)

(* SNF's tid makes reconstruction lossless even where the chase says the
   tid-free decomposition is lossy — the reason the tid exists. *)
let test_tid_vs_chase () =
  let r = Helpers.example1_relation () in
  let universe = names [ "State"; "ZipCode"; "Income" ] in
  let blocks = [ names [ "State" ]; names [ "ZipCode"; "Income" ] ] in
  Alcotest.(check bool) "tid-free split is lossy" false
    (Fd.chase_lossless blocks ~universe [ Fd.make [ "ZipCode" ] [ "State" ] ]);
  let rep =
    [ Snf_core.Partition.leaf "p0" [ ("State", Snf_crypto.Scheme.Ndet) ];
      Snf_core.Partition.leaf "p1"
        [ ("ZipCode", Snf_crypto.Scheme.Det); ("Income", Snf_crypto.Scheme.Ope) ] ]
  in
  Alcotest.(check bool) "tid join reconstructs anyway" true
    (Relation.equal_as_sets r
       (Snf_core.Partition.reconstruct (Snf_core.Partition.materialize r rep)))

(* --- failure injection over the encrypted store ------------------------------- *)

let owner () =
  System.outsource ~name:"fi" ~graph:(Helpers.example1_graph ())
    (Helpers.example1_relation ())
    (Helpers.example1_policy ())

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.to_string b

let test_tampered_cell_detected () =
  let o = owner () in
  let leaf =
    List.find
      (fun (l : Enc_relation.enc_leaf) ->
        List.exists (fun c -> c.Enc_relation.attr = "State") l.Enc_relation.columns)
      o.System.enc.Enc_relation.leaves
  in
  let col = Enc_relation.column leaf "State" in
  let tampered =
    match col.Enc_relation.cells.(0) with
    | Enc_relation.C_bytes b -> Enc_relation.C_bytes (flip_byte b 9)
    | _ -> Alcotest.fail "expected NDET bytes"
  in
  Alcotest.(check bool) "authenticated decryption rejects tampering" true
    (try
       ignore
         (Enc_relation.decrypt_cell o.System.client ~leaf:leaf.Enc_relation.label
            ~attr:"State" ~scheme:col.Enc_relation.scheme tampered);
       false
     with Integrity.Corruption _ -> true)

let test_tampered_tid_detected () =
  let o = owner () in
  let leaf = List.hd o.System.enc.Enc_relation.leaves in
  Alcotest.(check bool) "tid tampering detected" true
    (try
       ignore
         (Enc_relation.decrypt_tid o.System.client ~leaf:leaf.Enc_relation.label
            (flip_byte leaf.Enc_relation.tids.(0) 3));
       false
     with Integrity.Corruption _ -> true)

let test_wrong_key_rejected () =
  let o = owner () in
  let impostor = Enc_relation.make_client ~relation_name:"fi" ~master:"wrong" () in
  let leaf = List.hd o.System.enc.Enc_relation.leaves in
  Alcotest.(check bool) "foreign client cannot decrypt" true
    (try
       ignore (Enc_relation.decrypt_leaf impostor leaf);
       false
     with Integrity.Corruption _ -> true)

let test_cross_column_cell_rejected () =
  (* A cell moved between columns decrypts under the wrong derived key:
     the SIV/MAC check must catch it. *)
  let o = owner () in
  let leaf =
    List.find
      (fun (l : Enc_relation.enc_leaf) ->
        List.exists (fun c -> c.Enc_relation.attr = "ZipCode") l.Enc_relation.columns)
      o.System.enc.Enc_relation.leaves
  in
  let zip = Enc_relation.column leaf "ZipCode" in
  Alcotest.(check bool) "cell swapped across columns rejected" true
    (try
       ignore
         (Enc_relation.decrypt_cell o.System.client ~leaf:leaf.Enc_relation.label
            ~attr:"Income" ~scheme:Snf_crypto.Scheme.Det zip.Enc_relation.cells.(0));
       false
     with Integrity.Corruption _ -> true)

let suite =
  [ t "chase classics" test_chase_classics;
    prop_chase_binary_theorem;
    prop_superkey_block_lossless;
    t "tid vs chase" test_tid_vs_chase;
    t "tampered cell detected" test_tampered_cell_detected;
    t "tampered tid detected" test_tampered_tid_detected;
    t "wrong key rejected" test_wrong_key_rejected;
    t "cross-column swap rejected" test_cross_column_cell_rejected ]

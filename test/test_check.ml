(* The Snf_check harness itself: oracle correctness, generator
   determinism and clamping, the five-representation differential runner
   (the ≥200-query acceptance run), and the soak report plumbing. *)

open Helpers
open Snf_relational
open Snf_check
module Query = Snf_exec.Query
module Json = Snf_obs.Json

(* --- oracle ---------------------------------------------------------------- *)

(* The oracle (row loops over Schema indexes) against the library's own
   Algebra-based evaluator: two independent plaintext semantics. *)
let oracle_vs_reference =
  qtest ~count:30 "oracle agrees with the Algebra reference evaluator" Gen.spec_gen
    (fun spec ->
      let inst = Gen.instance spec in
      List.for_all
        (fun q ->
          Oracle.agree
            (Oracle.answer inst.Gen.relation q)
            (Query.reference_answer inst.Gen.relation q))
        (Gen.queries ~count:6 ~seed:spec.Gen.seed inst))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let oracle_diff_summary () =
  let r names rows = relation_of_int_rows names rows in
  let expected = r [ "x" ] [ [ 1 ]; [ 2 ] ] and got = r [ "x" ] [ [ 2 ]; [ 9 ] ] in
  let s = Oracle.diff_summary ~expected ~got in
  check_bool "mentions counts" true (contains s "expected 2 rows, got 2");
  check_bool "missing row shown" true (contains s "missing");
  check_bool "spurious row shown" true (contains s "spurious")

let oracle_group_sum () =
  let r =
    relation_of_int_rows [ "g"; "v" ] [ [ 1; 10 ]; [ 2; 5 ]; [ 1; 7 ]; [ 3; 0 ] ]
  in
  Alcotest.(check (list (pair string int)))
    "grouped sums, sorted by group"
    [ ("1", 17); ("2", 5); ("3", 0) ]
    (Oracle.group_sum r ~group_by:"g" ~sum:"v"
    |> List.map (fun (v, s) -> (Value.to_string v, s)))

(* --- generator ------------------------------------------------------------- *)

let normalize_clamps () =
  let s =
    Gen.normalize
      { Gen.seed = -5; rows = 1000; clusters = [ 9; 1; 9; 9; 9 ]; singles = 0 }
  in
  check_int "seed abs" 5 s.Gen.seed;
  check_int "rows capped" 64 s.Gen.rows;
  Alcotest.(check (list int)) "clusters capped" [ 5; 2; 5 ] s.Gen.clusters;
  check_int "singles floored" 2 s.Gen.singles

let instance_deterministic () =
  let spec = { Gen.seed = 77; rows = 13; clusters = [ 3; 2 ]; singles = 4 } in
  let a = Gen.instance spec and b = Gen.instance spec in
  check_same_bag "same relation from same spec" a.Gen.relation b.Gen.relation;
  check_bool "same workload from same spec" true
    (Gen.queries ~count:10 ~seed:3 a = Gen.queries ~count:10 ~seed:3 b);
  check_bool "planted FDs present" true (Snf_deps.Dep_graph.fds a.Gen.graph <> [])

let planted_fd_holds () =
  (* Member columns really are functions of their cluster root. *)
  let inst = Gen.instance { Gen.seed = 9; rows = 40; clusters = [ 4 ]; singles = 2 } in
  let root = Relation.column inst.Gen.relation "c0r" in
  List.iter
    (fun m ->
      let col = Relation.column inst.Gen.relation m in
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun i v ->
          let k = Value.encode root.(i) in
          match Hashtbl.find_opt seen k with
          | None -> Hashtbl.add seen k v
          | Some v' ->
            check_bool (Printf.sprintf "%s determined by c0r at row %d" m i) true
              (Value.equal v v'))
        col)
    [ "c0m0"; "c0m1"; "c0m2" ]

(* --- differential runner --------------------------------------------------- *)

let five_representations () =
  let inst = Gen.instance { Gen.seed = 5; rows = 10; clusters = [ 3 ]; singles = 3 } in
  let reps = Differential.representations inst.Gen.graph inst.Gen.policy in
  Alcotest.(check (list string))
    "labels"
    [ "universal"; "atomic"; "snf"; "max-repeating"; "workload-aware" ]
    (List.map fst reps);
  List.iter
    (fun (label, rep) ->
      match Snf_core.Partition.validate inst.Gen.policy rep with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid representation: %s" label e)
    reps

let differential_conformance =
  (* Random specs through the full runner; QCheck2 shrinks any failing
     spec toward the minimal reproducing schema. *)
  qtest ~count:10 "random spec passes the differential runner" Gen.spec_gen
    (fun spec ->
      let o = Differential.run_spec ~queries:5 spec in
      match o.Differential.failures with
      | [] -> true
      | f :: _ ->
        QCheck2.Test.fail_report (Differential.failure_to_string f))

let acceptance_soak () =
  (* The headline acceptance criterion: at least 200 generated queries,
     every representation agreeing with the oracle and each other. *)
  let r = Differential.soak ~with_faults:false ~seed:20240 ~queries:200 () in
  check_bool "≥200 distinct queries" true (r.Differential.queries_run >= 200);
  check_bool "each query ran in all five representations" true
    (r.Differential.executions >= 5 * r.Differential.queries_run);
  List.iter
    (fun f -> Alcotest.failf "conformance: %s" (Differential.failure_to_string f))
    r.Differential.failures;
  check_bool "soak verdict" true (Differential.passed r)

let soak_report_json () =
  let r = Differential.soak ~with_faults:true ~seed:31337 ~queries:25 () in
  check_bool "faults ran" true (r.Differential.fault_applicable > 0);
  let json = Differential.report_to_json r in
  match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "report JSON does not parse back: %s" e
  | Ok parsed ->
    check_bool "round-trips" true (Json.equal json parsed);
    check_bool "carries the seed" true
      (Json.member "seed" parsed = Some (Json.Int 31337));
    check_bool "carries the verdict" true
      (Json.member "passed" parsed = Some (Json.Bool (Differential.passed r)))

let suite =
  [ oracle_vs_reference;
    Alcotest.test_case "oracle diff summary" `Quick oracle_diff_summary;
    Alcotest.test_case "oracle group-sum" `Quick oracle_group_sum;
    Alcotest.test_case "normalize clamps specs" `Quick normalize_clamps;
    Alcotest.test_case "instances are deterministic" `Quick instance_deterministic;
    Alcotest.test_case "planted FDs hold in the data" `Quick planted_fd_holds;
    Alcotest.test_case "five valid representations" `Quick five_representations;
    differential_conformance;
    Alcotest.test_case "acceptance: 200-query differential soak" `Slow acceptance_soak;
    Alcotest.test_case "soak report JSON round-trips" `Quick soak_report_json ]

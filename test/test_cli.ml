(* Drive the installed snf_cli binary: exit code 0 on success, 1 on
   conformance failure, 2 on command-line misuse with a pointed message.
   The binary is a declared dune dependency of this test, reachable
   relative to the test's build directory. *)

open Helpers

let cli = Filename.concat (Filename.concat ".." "bin") "snf_cli.exe"

let run ?(capture_stderr = false) args =
  let err = Filename.temp_file "snf_cli_test" ".err" in
  let cmd =
    Filename.quote_command cli args ~stdout:Filename.null ~stderr:err
  in
  let code = Sys.command cmd in
  let stderr_text =
    if capture_stderr then (
      let ic = open_in_bin err in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))
    else ""
  in
  Sys.remove err;
  (code, stderr_text)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let binary_present () =
  check_bool (cli ^ " exists (dune dep)") true (Sys.file_exists cli)

let help_ok () =
  check_int "--help exits 0" 0 (fst (run [ "--help" ]));
  check_int "--version exits 0" 0 (fst (run [ "--version" ]));
  check_int "subcommand --help exits 0" 0 (fst (run [ "check"; "--help" ]))

let unknown_subcommand () =
  let code, err = run ~capture_stderr:true [ "frobnicate" ] in
  check_int "unknown subcommand exits 2" 2 code;
  check_bool "names the failure" true (contains err "unknown");
  check_bool "points at --help" true (contains err "--help")

let unknown_flag () =
  let code, err = run ~capture_stderr:true [ "check"; "--no-such-flag" ] in
  check_int "unknown flag exits 2" 2 code;
  check_bool "points at --help" true (contains err "--help")

let malformed_value () =
  check_int "non-integer --queries exits 2" 2
    (fst (run [ "check"; "--queries"; "twelve" ]));
  check_int "missing required --csv exits 2" 2 (fst (run [ "analyze" ]))

let check_soak_passes () =
  let out = Filename.temp_file "snf_cli_test" ".json" in
  let code, _ =
    run [ "check"; "--seed"; "5"; "--queries"; "25"; "--rows"; "8"; "--out"; out ]
  in
  check_int "soak exits 0" 0 code;
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove out;
  (match Snf_obs.Json.of_string text with
   | Error e -> Alcotest.failf "report is not JSON: %s" e
   | Ok json ->
     check_bool "report records the seed" true
       (Snf_obs.Json.member "seed" json = Some (Snf_obs.Json.Int 5));
     check_bool "report records a pass" true
       (Snf_obs.Json.member "passed" json = Some (Snf_obs.Json.Bool true)))

let with_csv f =
  let path = Filename.temp_file "snf_cli_test" ".csv" in
  let oc = open_out_bin path in
  output_string oc "id:int,code:text\n0,c0\n1,c1\n2,c0\n3,c1\n4,c1\n";
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let query_backend_selection () =
  with_csv @@ fun csv ->
  let query backend =
    fst
      (run
         [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
           "--where"; "code=c1"; "--backend"; backend ])
  in
  check_int "query --backend mem exits 0" 0 (query "mem");
  check_int "query --backend disk exits 0" 0 (query "disk");
  let code, err = run ~capture_stderr:true
      [ "query"; "--csv"; csv; "--select"; "id"; "--backend"; "floppy" ]
  in
  check_int "unknown backend exits 2" 2 code;
  check_bool "rejection names the flag" true (contains err "backend")

let check_rotate_with_metrics () =
  let out = Filename.temp_file "snf_cli_test" ".json" in
  let metrics = Filename.temp_file "snf_cli_test" ".metrics.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out; Sys.remove metrics)
    (fun () ->
      let code, _ =
        run
          [ "check"; "--seed"; "11"; "--queries"; "20"; "--rows"; "8";
            "--backend"; "rotate"; "--out"; out; "--metrics-out"; metrics ]
      in
      check_int "rotating soak exits 0" 0 code;
      let ic = open_in_bin metrics in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Snf_obs.Json.of_string text with
       | Error e -> Alcotest.failf "metrics snapshot is not JSON: %s" e
       | Ok _ -> ());
      check_bool "snapshot carries the wire traffic counters" true
        (contains text "exec.wire.requests");
      check_bool "snapshot carries the per-phase wire counters" true
        (contains text "exec.wire.probe.requests"));
  check_int "unknown check backend exits 2" 2
    (fst (run [ "check"; "--backend"; "floppy" ]))

let with_batch_file lines f =
  let path = Filename.temp_file "snf_cli_test" ".batch" in
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let query_batch_file () =
  with_csv @@ fun csv ->
  (* Good file: point, range and a comment, all in one shared pass. *)
  with_batch_file
    [ "# workload"; "id,code : code=c1"; "code : id=1..3"; "id : code=c0" ]
    (fun batch ->
      check_int "well-formed batch exits 0" 0
        (fst
           (run
              [ "query"; "--csv"; csv; "--enc"; "code=DET,id=OPE"; "--batch";
                batch ])));
  (* Malformed lines are CLI misuse: exit 2 with a pointed message, never
     a crash (3). *)
  let misuse lines want =
    with_batch_file lines (fun batch ->
        let code, err =
          run ~capture_stderr:true
            [ "query"; "--csv"; csv; "--enc"; "code=DET,id=OPE"; "--batch";
              batch ]
        in
        check_int (want ^ " exits 2") 2 code;
        check_bool (want ^ " names the problem") true (contains err want))
  in
  misuse [ "id,code code=c1" ] "expected";
  misuse [ "id : nonsense" ] "bad predicate";
  misuse [ "id : id=abc" ] "bad value";
  misuse [ "id : zz=1" ] "unknown attribute";
  misuse [ " : code=c1" ] "empty projection";
  misuse [ "# nothing but comments" ] "no queries";
  (* --select and --batch are alternatives; neither is misuse too. *)
  let code, err = run ~capture_stderr:true [ "query"; "--csv"; csv ] in
  check_int "neither --select nor --batch exits 2" 2 code;
  check_bool "message offers both" true (contains err "--batch")

let query_wire_trace () =
  with_csv @@ fun csv ->
  let base out =
    [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
      "--where"; "code=c1"; "--wire-trace-out"; out ]
  in
  (* JSON by extension: a decodable SNFT document. *)
  let json = Filename.temp_file "snf_cli_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove json) (fun () ->
      check_int "--wire-trace-out json exits 0" 0 (fst (run (base json)));
      match Snf_obs.Wiretrace.read_json ~path:json with
      | Error e -> Alcotest.failf "trace is not SNFT JSON: %s" e
      | Ok trace ->
        check_bool "trace has events" true (trace.Snf_obs.Wiretrace.events <> []));
  (* .snft extension selects the binary frames. *)
  let snft = Filename.temp_file "snf_cli_test" ".snft" in
  Fun.protect ~finally:(fun () -> Sys.remove snft) (fun () ->
      check_int "--wire-trace-out .snft exits 0" 0 (fst (run (base snft)));
      match Snf_obs.Wiretrace.read_binary ~path:snft with
      | Error e -> Alcotest.failf "trace is not binary SNFT: %s" e
      | Ok trace ->
        check_bool "binary trace has events" true
          (trace.Snf_obs.Wiretrace.events <> []))

let trace_out_unwritable () =
  with_csv @@ fun csv ->
  (* An unwritable output path is command-line misuse (2), caught before
     any work runs — not an uncaught Sys_error crash (3). *)
  let bad = Filename.concat Filename.null "trace.json" in
  let misuse flag =
    let code, err =
      run ~capture_stderr:true
        [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
          "--where"; "code=c1"; flag; bad ]
    in
    check_int (flag ^ " unwritable exits 2") 2 code;
    check_bool (flag ^ " message names the flag") true (contains err flag);
    check_bool (flag ^ " message names the path") true (contains err bad)
  in
  misuse "--trace-out";
  misuse "--wire-trace-out";
  let code, err =
    run ~capture_stderr:true
      [ "check"; "--rows"; "8"; "--queries"; "5"; "--out"; bad ]
  in
  check_int "check --out unwritable exits 2" 2 code;
  check_bool "check message names the flag" true (contains err "--out")

let check_wire_trace () =
  let out = Filename.temp_file "snf_cli_test" ".snft" in
  Fun.protect ~finally:(fun () -> Sys.remove out) @@ fun () ->
  let code, _ =
    run [ "check"; "--seed"; "3"; "--queries"; "10"; "--rows"; "8";
          "--faults"; "false"; "--wire-trace-out"; out ]
  in
  check_int "check --wire-trace-out exits 0" 0 code;
  match Snf_obs.Wiretrace.read_binary ~path:out with
  | Error e -> Alcotest.failf "soak trace is not binary SNFT: %s" e
  | Ok trace ->
    check_bool "soak trace has events" true (trace.Snf_obs.Wiretrace.events <> [])

let check_batch_sizes () =
  let code, _ =
    run [ "check"; "--seed"; "7"; "--queries"; "15"; "--rows"; "8";
          "--faults"; "false"; "--batch"; "8" ]
  in
  check_int "check --batch 8 exits 0" 0 code;
  let code, err = run ~capture_stderr:true [ "check"; "--batch"; "7" ] in
  check_int "check --batch 7 exits 2" 2 code;
  check_bool "rejection names the flag" true (contains err "batch")

(* --- serve: the networked server as a process ----------------------------- *)

let serve_misuse () =
  let code, err = run ~capture_stderr:true [ "serve"; "--addr"; "floppy:123" ] in
  check_int "bad address exits 2" 2 code;
  check_bool "message explains the grammar" true (contains err "bad address");
  (* a path something already occupies *)
  let taken = Filename.temp_file "snf_cli_test" ".sock" in
  Fun.protect ~finally:(fun () -> try Sys.remove taken with Sys_error _ -> ())
  @@ fun () ->
  let code, err =
    run ~capture_stderr:true [ "serve"; "--addr"; "unix:" ^ taken ]
  in
  check_int "address in use exits 2" 2 code;
  check_bool "message says in use" true (contains err "in use");
  (* unwritable pidfile is caught before binding anything *)
  let bad_pid = Filename.concat Filename.null "pid" in
  let code, err =
    run ~capture_stderr:true
      [ "serve"; "--addr"; "unix:" ^ taken ^ ".2"; "--pidfile"; bad_pid ]
  in
  check_int "unwritable pidfile exits 2" 2 code;
  check_bool "message names --pidfile" true (contains err "--pidfile")

let query_socket_no_server () =
  with_csv @@ fun csv ->
  let code, err =
    run ~capture_stderr:true
      [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
        "--backend"; "socket:unix:/nonexistent-snf.sock" ]
  in
  check_int "unreachable server exits 2" 2 code;
  check_bool "message points at the server" true (contains err "cannot reach server");
  let code, err =
    run ~capture_stderr:true
      [ "query"; "--csv"; csv; "--select"; "id"; "--backend"; "socket:junk" ]
  in
  check_int "malformed socket address exits 2" 2 code;
  check_bool "rejection names the flag" true (contains err "backend")

let query_sharded_backend () =
  with_csv @@ fun csv ->
  let query backend =
    fst
      (run
         [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
           "--where"; "code=c1"; "--backend"; backend ])
  in
  check_int "query --backend sharded:2 exits 0" 0 (query "sharded:2");
  check_int "query --backend sharded:3:mem exits 0" 0 (query "sharded:3:mem");
  check_int "query --backend sharded:2:disk exits 0" 0 (query "sharded:2:disk");
  (* Malformed specs are CLI misuse: exit 2 with a message naming the
     precise defect, never a crash. *)
  let misuse backend want =
    let code, err =
      run ~capture_stderr:true
        [ "query"; "--csv"; csv; "--select"; "id"; "--backend"; backend ]
    in
    check_int (backend ^ " exits 2") 2 code;
    check_bool (backend ^ " names the problem") true (contains err want)
  in
  misuse "sharded" "shard count";
  misuse "sharded:0" "at least 1";
  misuse "sharded:-1" "at least 1";
  misuse "sharded:x" "positive integer";
  misuse "sharded:2:floppy" "inner kind";
  misuse "sharded:2:socket:unix:/a.sock" "exactly 2";
  misuse "sharded:1:socket:junk" "address"

let check_sharded_backend () =
  let code, _ =
    run [ "check"; "--seed"; "9"; "--queries"; "10"; "--rows"; "8";
          "--faults"; "false"; "--backend"; "sharded" ]
  in
  check_int "check --backend sharded exits 0" 0 code

(* Spawn `snf_cli serve`, wait until it listens, run the body, then
   SIGTERM it and return its exit status. *)
let with_served_cli f =
  let sock = Filename.temp_file "snf_cli_test" ".sock" in
  Sys.remove sock;
  let pidfile = sock ^ ".pid" in
  let devnull = Unix.openfile Filename.null [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--addr"; "unix:" ^ sock; "--domains"; "2";
         "--pidfile"; pidfile |]
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; pidfile ])
  @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_listening () =
    if Sys.file_exists sock then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "server never started listening"
    else (
      Unix.sleepf 0.05;
      wait_listening ())
  in
  wait_listening ();
  f ("socket:unix:" ^ sock);
  check_bool "pidfile written while serving" true (Sys.file_exists pidfile);
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  (status, sock, pidfile)

let serve_then_query_then_sigterm () =
  let status, sock, pidfile =
    with_served_cli (fun backend ->
        with_csv @@ fun csv ->
        check_int "query --backend socket exits 0" 0
          (fst
             (run
                [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--select"; "id";
                  "--where"; "code=c1"; "--backend"; backend ]));
        (* a second client process reuses the same server *)
        check_int "batch over the socket exits 0" 0
          (with_batch_file [ "id,code : code=c1"; "id : code=c0" ] (fun batch ->
               fst
                 (run
                    [ "query"; "--csv"; csv; "--enc"; "code=DET"; "--batch";
                      batch; "--backend"; backend ]))))
  in
  (match status with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED n -> Alcotest.failf "SIGTERM drain exited %d, want 0" n
   | _ -> Alcotest.fail "server did not exit normally on SIGTERM");
  check_bool "socket path unlinked on drain" false (Sys.file_exists sock);
  check_bool "pidfile removed on drain" false (Sys.file_exists pidfile)

let suite =
  [ Alcotest.test_case "binary present" `Quick binary_present;
    Alcotest.test_case "help and version exit 0" `Quick help_ok;
    Alcotest.test_case "unknown subcommand exits 2" `Quick unknown_subcommand;
    Alcotest.test_case "unknown flag exits 2" `Quick unknown_flag;
    Alcotest.test_case "malformed values exit 2" `Quick malformed_value;
    Alcotest.test_case "check soak exits 0 and writes JSON" `Slow check_soak_passes;
    Alcotest.test_case "query --backend mem|disk, exit 2 on unknown" `Slow
      query_backend_selection;
    Alcotest.test_case "check --backend rotate writes wire metrics" `Slow
      check_rotate_with_metrics;
    Alcotest.test_case "query --batch FILE: shared pass, exit 2 on malformed"
      `Slow query_batch_file;
    Alcotest.test_case "query --wire-trace-out json|.snft" `Slow query_wire_trace;
    Alcotest.test_case "unwritable output paths exit 2" `Quick trace_out_unwritable;
    Alcotest.test_case "check --wire-trace-out records the soak" `Slow
      check_wire_trace;
    Alcotest.test_case "check --batch 1|8|64" `Slow check_batch_sizes;
    Alcotest.test_case "serve misuse exits 2 with pointed messages" `Quick
      serve_misuse;
    Alcotest.test_case "query --backend socket without a server exits 2" `Quick
      query_socket_no_server;
    Alcotest.test_case "query --backend sharded:N, exit 2 on malformed specs"
      `Slow query_sharded_backend;
    Alcotest.test_case "check --backend sharded exits 0" `Slow
      check_sharded_backend;
    Alcotest.test_case "serve, query over the socket, SIGTERM drains to 0" `Slow
      serve_then_query_then_sigterm ]

(* Cost-based planner: statistics reduction and drift, plan-cache
   stamping (key epoch + statistics version), cached-vs-uncached
   bit-identity (including across Parallel domains), enumeration
   truncation notes, set-cover and join-order wins over greedy, and the
   EXPLAIN rendering. *)

open Snf_relational
open Snf_exec
module Partition = Snf_core.Partition
module Strategy = Snf_core.Strategy
module Scheme = Snf_crypto.Scheme
module Explain = Snf_core.Explain
module Metrics = Snf_obs.Metrics

let check = Alcotest.check
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fabricate a server stats answer without a server. *)
let ls label rows attrs =
  { Wire.s_label = label;
    s_rows = rows;
    s_attrs =
      List.map (fun (a, classes) -> { Wire.a_attr = a; a_classes = classes }) attrs }

let cost_handle ?max_cover ?max_orders ?(epoch = ref 0) stats =
  Planner.cost_based ?max_cover ?max_orders
    ~price:(fun pl -> Cost_model.plan_seconds stats pl)
    ~stamp:(fun () -> (!epoch, Statistics.version stats))
    ()

let cache_name = function `Hit -> "hit" | `Miss -> "miss"

let decision handle rep q =
  match Planner.decide ~handle rep q with
  | Ok d -> d
  | Error e -> Alcotest.fail ("unexpected plan error: " ^ e)

(* --- statistics ------------------------------------------------------------- *)

let test_statistics_versioning () =
  let stats = Statistics.create () in
  check_int "empty statistics at version 0" 0 (Statistics.version stats);
  let base = [ ls "p0" 100 [ ("a", [ ("k1", 10); ("k2", 90) ]) ]; ls "p1" 100 [] ] in
  Statistics.ingest stats base;
  check_int "first ingest bumps" 1 (Statistics.version stats);
  Statistics.ingest stats base;
  check_int "equivalent re-ingest keeps the version" 1 (Statistics.version stats);
  (* 10% row move: inside the 20% threshold. *)
  Statistics.ingest stats
    [ ls "p0" 110 [ ("a", [ ("k1", 12); ("k2", 98) ]) ]; ls "p1" 100 [] ];
  check_int "small drift tolerated" 1 (Statistics.version stats);
  (* Doubled rows: past the threshold. *)
  Statistics.ingest stats
    [ ls "p0" 220 [ ("a", [ ("k1", 24); ("k2", 196) ]) ]; ls "p1" 200 [] ];
  check_int "large drift bumps" 2 (Statistics.version stats);
  (* Leaf-set change always bumps. *)
  Statistics.ingest stats [ ls "p0" 220 [ ("a", [ ("k1", 24); ("k2", 196) ]) ] ];
  check_int "leaf-set change bumps" 3 (Statistics.version stats)

let test_statistics_lookups () =
  let stats = Statistics.create () in
  Statistics.ingest stats
    [ ls "p0" 100 [ ("a", [ ("k1", 10); ("k2", 40); ("k3", 50) ]); ("b", []) ] ];
  check_int "rows" 100 (Option.get (Statistics.rows stats ~leaf:"p0"));
  check_bool "unknown leaf rows" true (Statistics.rows stats ~leaf:"nope" = None);
  check_int "distinct" 3 (Option.get (Statistics.distinct stats ~leaf:"p0" ~attr:"a"));
  check (Alcotest.float 1e-9) "eq selectivity = worst-case class share" 0.5
    (Statistics.eq_selectivity stats ~leaf:"p0" ~attr:"a");
  check (Alcotest.float 1e-9) "no histogram: conservative 1.0" 1.0
    (Statistics.eq_selectivity stats ~leaf:"p0" ~attr:"b");
  check_bool "cold wire estimate positive" true
    (Statistics.wire_bytes_per_request stats ~phase:"fetch" > 0.)

(* --- plan cache ------------------------------------------------------------- *)

let two_leaf_rep () =
  [ Partition.leaf "p0" [ ("a", Scheme.Det); ("b", Scheme.Det) ];
    Partition.leaf "p1" [ ("c", Scheme.Det) ] ]

let test_cache_hit_is_bit_identical () =
  let stats = Statistics.create () in
  let handle = cost_handle stats in
  let rep = two_leaf_rep () in
  let q = Query.point ~select:[ "a"; "c" ] [ ("a", Value.Int 1) ] in
  let before = Metrics.snapshot () in
  let d1 = decision handle rep q in
  let d2 = decision handle rep q in
  let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
  let d name = Option.value (List.assoc_opt name deltas) ~default:0 in
  check Alcotest.string "first decide misses" "miss" (cache_name d1.Planner.d_cache);
  check Alcotest.string "second decide hits" "hit" (cache_name d2.Planner.d_cache);
  check_bool "miss priced candidates" true (d1.Planner.d_enumerated > 0);
  check_int "hit priced nothing" 0 d2.Planner.d_enumerated;
  check_bool "plans bit-identical" true (d1.Planner.d_plan = d2.Planner.d_plan);
  check_bool "estimates identical" true (d1.Planner.d_estimate = d2.Planner.d_estimate);
  check_bool "rejected identical" true (d1.Planner.d_rejected = d2.Planner.d_rejected);
  check_int "one hit counted" 1 (d "plan.cache.hit");
  check_int "one miss counted" 1 (d "plan.cache.miss");
  check_int "enumerated counter = miss's priced count" d1.Planner.d_enumerated
    (d "plan.candidates.enumerated")

let test_epoch_bump_replans () =
  let stats = Statistics.create () in
  let epoch = ref 0 in
  let handle = cost_handle ~epoch stats in
  let rep = two_leaf_rep () in
  let q = Query.point ~select:[ "a"; "c" ] [] in
  let d1 = decision handle rep q in
  check Alcotest.string "cold: miss" "miss" (cache_name d1.Planner.d_cache);
  check Alcotest.string "warm: hit" "hit"
    (cache_name (decision handle rep q).Planner.d_cache);
  incr epoch;
  let d3 = decision handle rep q in
  check Alcotest.string "epoch bump forces re-plan" "miss"
    (cache_name d3.Planner.d_cache);
  check_bool "re-planned answer identical" true (d3.Planner.d_plan = d1.Planner.d_plan);
  check Alcotest.string "stable again after re-plan" "hit"
    (cache_name (decision handle rep q).Planner.d_cache)

let test_stats_drift_replans () =
  let stats = Statistics.create () in
  Statistics.ingest stats [ ls "p0" 100 []; ls "p1" 100 [] ];
  let handle = cost_handle stats in
  let rep = two_leaf_rep () in
  let q = Query.point ~select:[ "a"; "c" ] [] in
  ignore (decision handle rep q);
  check Alcotest.string "warm: hit" "hit"
    (cache_name (decision handle rep q).Planner.d_cache);
  (* Equivalent ingest: version stable, cache stays warm. *)
  Statistics.ingest stats [ ls "p0" 100 []; ls "p1" 100 [] ];
  check Alcotest.string "equivalent stats keep the cache" "hit"
    (cache_name (decision handle rep q).Planner.d_cache);
  (* Drift past the threshold: the stamp moves, the entry is stale. *)
  Statistics.ingest stats [ ls "p0" 500 []; ls "p1" 500 [] ];
  check Alcotest.string "stats drift forces re-plan" "miss"
    (cache_name (decision handle rep q).Planner.d_cache)

let test_parallel_domains_memo () =
  (* The memo is domain-local: every domain misses once for a new shape,
     then hits; answers are bit-identical everywhere and every call moves
     exactly one of hit/miss. *)
  let stats = Statistics.create () in
  let handle = cost_handle stats in
  let rep = two_leaf_rep () in
  let q = Query.point ~select:[ "a"; "b"; "c" ] [ ("b", Value.Int 7) ] in
  let calls = 8 in
  let before = Metrics.snapshot () in
  let ds =
    Parallel.map_list ~domains:4 (fun _ -> decision handle rep q) (List.init calls Fun.id)
  in
  let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
  let d name = Option.value (List.assoc_opt name deltas) ~default:0 in
  let d0 = List.hd ds in
  List.iter
    (fun di ->
      check_bool "plans bit-identical across domains" true
        (di.Planner.d_plan = d0.Planner.d_plan);
      check_bool "estimates identical across domains" true
        (di.Planner.d_estimate = d0.Planner.d_estimate))
    ds;
  check_int "every call moved exactly one of hit/miss" calls
    (d "plan.cache.hit" + d "plan.cache.miss");
  check_bool "at least one domain planned fresh" true (d "plan.cache.miss" >= 1)

(* --- enumeration ------------------------------------------------------------ *)

let test_set_cover_beats_greedy () =
  (* Greedy's classic trap: a 4-attr decoy leaf d beats both optimal
     3-attr halves on first pick, then two more leaves are needed —
     greedy covers with 3 leaves where 2 suffice. The cost planner
     enumerates the 2-cover and prices it cheaper (fewer joins). *)
  let rep =
    [ Partition.leaf "o1" [ ("s1", Scheme.Det); ("s2", Scheme.Det); ("s3", Scheme.Det) ];
      Partition.leaf "o2" [ ("s4", Scheme.Det); ("s5", Scheme.Det); ("s6", Scheme.Det) ];
      Partition.leaf "d"
        [ ("s2", Scheme.Det); ("s3", Scheme.Det); ("s4", Scheme.Det);
          ("s5", Scheme.Det) ] ]
  in
  let q = Query.point ~select:[ "s1"; "s2"; "s3"; "s4"; "s5"; "s6" ] [] in
  (match Planner.plan rep q with
   | Ok p -> check_int "greedy falls into the 3-leaf trap" 3 (List.length p.Planner.leaves)
   | Error e -> Alcotest.fail e);
  let d = decision (cost_handle (Statistics.create ())) rep q in
  check_int "cost planner finds the 2-leaf cover" 2
    (List.length d.Planner.d_plan.Planner.leaves);
  let est = Option.get d.Planner.d_estimate in
  List.iter
    (fun (c : Planner.candidate) ->
      check_bool "chosen plan at most every rejected candidate" true
        (est <= c.Planner.cand_cost))
    d.Planner.d_rejected

let test_join_order_small_first () =
  (* Three mandatory leaves with skewed statistics: the chain's running
     width is the max of the inputs so far, so the 1000-row leaf must go
     last — every order starting with it pays the big join twice. *)
  let rep =
    [ Partition.leaf "big" [ ("x", Scheme.Det) ];
      Partition.leaf "m1" [ ("y", Scheme.Det) ];
      Partition.leaf "m2" [ ("z", Scheme.Det) ] ]
  in
  let stats = Statistics.create () in
  Statistics.ingest stats [ ls "big" 1000 []; ls "m1" 10 []; ls "m2" 10 [] ];
  let q = Query.point ~select:[ "x"; "y"; "z" ] [] in
  let d = decision (cost_handle stats) rep q in
  let leaves = d.Planner.d_plan.Planner.leaves in
  check_int "all three leaves required" 3 (List.length leaves);
  check Alcotest.string "the big leaf joins last" "big" (List.nth leaves 2);
  let est = Option.get d.Planner.d_estimate in
  List.iter
    (fun (c : Planner.candidate) ->
      check_bool "chosen order at most every rejected order" true
        (est <= c.Planner.cand_cost))
    d.Planner.d_rejected

let test_truncation_notes () =
  (* Covers: 8 relevant leaves exceed the subset bound — a feasible plan
     still exists (the wide leaf), and the decision says what it skipped. *)
  let attrs = List.init 7 (fun i -> Printf.sprintf "t%d" i) in
  let wide = Partition.leaf "wide" (List.map (fun a -> (a, Scheme.Det)) attrs) in
  let narrow = List.map (fun a -> Partition.leaf ("n-" ^ a) [ (a, Scheme.Det) ]) attrs in
  let d =
    decision
      (cost_handle (Statistics.create ()))
      (wide :: narrow)
      (Query.point ~select:attrs [])
  in
  check_bool "cover truncation reported" true
    (List.exists
       (function
         | Planner.Truncated_covers { bound = 6; relevant = 8 } -> true
         | _ -> false)
       d.Planner.d_notes);
  (* Orders: a mandatory 4-leaf cover has 24 orders, more than the
     default budget prices. *)
  let attrs4 = [ "u"; "v"; "w"; "x" ] in
  let rep4 = List.map (fun a -> Partition.leaf ("l-" ^ a) [ (a, Scheme.Det) ]) attrs4 in
  let d4 =
    decision (cost_handle (Statistics.create ())) rep4 (Query.point ~select:attrs4 [])
  in
  check_bool "order truncation reported" true
    (List.exists
       (function
         | Planner.Truncated_orders { cover_size = 4; _ } -> true
         | _ -> false)
       d4.Planner.d_notes);
  check_bool "notes render" true
    (List.for_all
       (fun n -> String.length (Planner.note_to_string n) > 0)
       (d.Planner.d_notes @ d4.Planner.d_notes))

(* --- server statistics + end-to-end ----------------------------------------- *)

let test_store_stats_server_visible () =
  let r = Helpers.example1_relation () in
  let owner =
    System.outsource ~name:"stats-test" r (Helpers.example1_policy ())
      ~graph:(Helpers.example1_graph ())
  in
  Fun.protect ~finally:(fun () -> System.release owner) @@ fun () ->
  let conn =
    Server_api.connect (module Backend_mem) (Backend_mem.of_store owner.System.enc)
  in
  Fun.protect ~finally:(fun () -> Server_api.close conn) @@ fun () ->
  let leaves = Server_api.store_stats conn in
  let rep = owner.System.plan.Snf_core.Normalizer.representation in
  check_bool "every reported leaf exists in the representation" true
    (List.for_all
       (fun (l : Wire.leaf_stats) ->
         List.exists
           (fun (pl : Partition.leaf) -> pl.Partition.label = l.Wire.s_label)
           rep)
       leaves);
  List.iter
    (fun (l : Wire.leaf_stats) ->
      check_int "row counts match the relation" (Relation.cardinality r) l.Wire.s_rows;
      List.iter
        (fun (a : Wire.attr_stats) ->
          check_bool "digest histogram entries are (16-hex, positive)" true
            (List.for_all
               (fun (digest, n) -> String.length digest = 16 && n > 0)
               a.Wire.a_classes);
          check_int "class sizes sum to the rows" l.Wire.s_rows
            (List.fold_left (fun acc (_, n) -> acc + n) 0 a.Wire.a_classes))
        l.Wire.s_attrs)
    leaves

let test_sharded_store_stats_match_mem () =
  (* The coordinator's per-shard merge must reproduce the single-store
     answer byte-for-byte: value classes span shards, so digests are
     summed and re-sorted. *)
  let r = Helpers.example1_relation () in
  let owner =
    System.outsource ~name:"stats-shard" r (Helpers.example1_policy ())
      ~graph:(Helpers.example1_graph ())
  in
  Fun.protect ~finally:(fun () -> System.release owner) @@ fun () ->
  let st =
    Backend_sharded.create
      ~connect:(fun _ -> Server_api.connect (module Backend_mem) (Backend_mem.empty ()))
      ~shards:3 ()
  in
  let sharded = System.with_backend owner (System.sharded st) in
  Fun.protect ~finally:(fun () -> System.release sharded) @@ fun () ->
  let mem_conn =
    Server_api.connect (module Backend_mem) (Backend_mem.of_store owner.System.enc)
  in
  Fun.protect ~finally:(fun () -> Server_api.close mem_conn) @@ fun () ->
  let sharded_conn = Backend_sharded.connect st in
  Fun.protect ~finally:(fun () -> Server_api.close sharded_conn) @@ fun () ->
  check_bool "sharded statistics identical to single-store" true
    (Server_api.store_stats sharded_conn = Server_api.store_stats mem_conn)

let test_cost_planner_end_to_end () =
  let r = Helpers.example1_relation () in
  let owner =
    System.outsource ~name:"cost-e2e" r (Helpers.example1_policy ())
      ~graph:(Helpers.example1_graph ())
  in
  Fun.protect ~finally:(fun () -> System.release owner) @@ fun () ->
  let planner = System.cost_planner owner in
  List.iter
    (fun q ->
      match (System.query owner q, System.query ~planner owner q) with
      | Ok (greedy_ans, _), Ok (cost_ans, trace) ->
        Helpers.check_same_bag "cost-planned answer = greedy answer" greedy_ans
          cost_ans;
        let d = trace.Executor.decision in
        check Alcotest.string "selector" "cost" d.Planner.d_selector;
        check_bool "estimate present" true (d.Planner.d_estimate <> None)
      | Error e, _ | _, Error e -> Alcotest.fail e)
    [ Query.point ~select:[ "State"; "Income" ] [ ("ZipCode", Value.Int 94016) ];
      Query.range ~select:[ "State" ] [ ("Income", Value.Int 70, Value.Int 120) ];
      Query.point ~select:[ "State"; "ZipCode"; "Income" ] [] ]

(* --- EXPLAIN rendering ------------------------------------------------------- *)

let test_render_plan () =
  let text =
    Explain.render_plan
      { Explain.pr_query = "SELECT a, c WHERE a = 1";
        pr_selector = "cost";
        pr_cache = `Miss;
        pr_leaves = [ "p0"; "p1" ];
        pr_joins = 1;
        pr_pred_homes = [ ("a = 1", "p0") ];
        pr_proj_homes = [ ("a", "p0"); ("c", "p1") ];
        pr_estimate = Some 0.00125;
        pr_enumerated = 4;
        pr_rejected = [ ([ "p1"; "p0" ], 0.002) ];
        pr_notes = [ "covers truncated: 8 relevant leaves, bound 6" ];
        pr_actual = [ ("result_rows", 2); ("comparisons", 54) ] }
  in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and tl = String.length text in
        let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool (Printf.sprintf "EXPLAIN mentions %S" needle) true found)
    [ "EXPLAIN SELECT a, c"; "cost"; "cache miss"; "p0 |><| p1"; "predicate a = 1";
      "0.001250"; "rejected"; "covers truncated"; "result_rows"; "comparisons" ]

(* --- properties -------------------------------------------------------------- *)

let prop_cache_transparent =
  (* For random policies/graphs: a cost handle's second decision is a
     cache hit carrying bit-identical plan, estimate, rejected set and
     notes — and a fresh handle over the same pricing re-derives the
     same answer from scratch. *)
  Helpers.qtest ~count:60 "random reps: cached decision == fresh decision"
    Helpers.instance_gen (fun (names, policy, g) ->
      let rep = Strategy.non_repeating g policy in
      let q = Query.point ~select:names [ (List.hd names, Value.Int 0) ] in
      let stats = Statistics.create () in
      let project = function
        | Ok (d : Planner.decision) ->
          Ok (d.Planner.d_plan, d.Planner.d_estimate, d.Planner.d_rejected,
              d.Planner.d_notes)
        | Error e -> Error e
      in
      let h1 = cost_handle stats in
      let r1 = Planner.decide ~handle:h1 rep q in
      let r2 = Planner.decide ~handle:h1 rep q in
      let r3 = Planner.decide ~handle:(cost_handle stats) rep q in
      (match r2 with
       | Ok d -> d.Planner.d_cache = `Hit && d.Planner.d_enumerated = 0
       | Error _ -> true)
      && project r1 = project r2
      && project r1 = project r3)

let suite =
  [ Alcotest.test_case "statistics versioning and drift" `Quick
      test_statistics_versioning;
    Alcotest.test_case "statistics lookups and selectivity" `Quick
      test_statistics_lookups;
    Alcotest.test_case "cache hit is bit-identical, counters exact" `Quick
      test_cache_hit_is_bit_identical;
    Alcotest.test_case "key-epoch bump forces re-planning" `Quick
      test_epoch_bump_replans;
    Alcotest.test_case "statistics drift forces re-planning" `Quick
      test_stats_drift_replans;
    Alcotest.test_case "parallel domains: memo local, answers identical" `Quick
      test_parallel_domains_memo;
    Alcotest.test_case "set-cover trap: cost beats greedy" `Quick
      test_set_cover_beats_greedy;
    Alcotest.test_case "join order: big leaf last" `Quick test_join_order_small_first;
    Alcotest.test_case "truncation notes" `Quick test_truncation_notes;
    Alcotest.test_case "store stats are server-visible facts" `Quick
      test_store_stats_server_visible;
    Alcotest.test_case "sharded store stats merge byte-identically" `Quick
      test_sharded_store_stats_match_mem;
    Alcotest.test_case "cost planner end to end: answers identical" `Quick
      test_cost_planner_end_to_end;
    Alcotest.test_case "EXPLAIN rendering" `Quick test_render_plan;
    prop_cache_transparent ]

open Snf_crypto

let t name f = Alcotest.test_case name `Quick f

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_int_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_prng_sample () =
  let p = Prng.create 3 in
  let s = Prng.sample_without_replacement p 5 10 in
  Alcotest.(check int) "five drawn" 5 (List.length s);
  Alcotest.(check bool) "sorted distinct" true
    (List.sort_uniq compare s = s && List.for_all (fun i -> i >= 0 && i < 10) s);
  Alcotest.(check (list int)) "k = n is everything" [ 0; 1; 2 ]
    (Prng.sample_without_replacement p 3 3)

let test_prng_zipf () =
  let p = Prng.create 5 in
  let sample = Prng.zipf_sampler p ~s:1.2 50 in
  let counts = Array.make 50 0 in
  for _ = 1 to 20_000 do
    let v = sample () in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 50);
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(5) && counts.(5) > counts.(30))

let test_prng_split_independent () =
  let parent = Prng.create 99 in
  let child = Prng.split parent in
  let a = List.init 50 (fun _ -> Prng.int parent 1000) in
  let b = List.init 50 (fun _ -> Prng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b);
  (* determinism: same construction gives same streams *)
  let parent' = Prng.create 99 in
  let child' = Prng.split parent' in
  Alcotest.(check bool) "reproducible" true
    (List.init 50 (fun _ -> Prng.int child' 1000) = b)

let test_prng_shuffle_permutes () =
  let p = Prng.create 9 in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually moved something" true (arr <> Array.init 100 Fun.id)

(* --- Prf (SipHash-2-4 official vectors) ---------------------------------- *)

let siphash_key = String.init 16 Char.chr

let test_siphash_vectors () =
  (* From the SipHash reference implementation (vectors for key
     000102...0f and messages 00 01 02 ...). *)
  let cases =
    [ (0, 0x726fdb47dd0e0e31L); (1, 0x74f839c593dc67fdL); (2, 0x0d6c8009d9a94f5aL);
      (3, 0x85676696d7fb7e2dL); (8, 0x93f5f5799a932462L); (15, 0xa129ca6149be45e5L) ]
  in
  List.iter
    (fun (len, expect) ->
      Alcotest.(check int64)
        (Printf.sprintf "siphash len %d" len)
        expect
        (Prf.mac siphash_key (String.init len Char.chr)))
    cases

let test_prf_misc () =
  Alcotest.check_raises "bad key" (Invalid_argument "Prf.mac: key must be 16 bytes")
    (fun () -> ignore (Prf.mac "short" "x"));
  let k = Prf.key_of_string "anything" in
  Alcotest.(check int) "derived key is 16 bytes" 16 (String.length k);
  Alcotest.(check bool) "derive differs by label" true
    (Prf.derive k "a" <> Prf.derive k "b");
  let ks = Prf.keystream k ~nonce:"n" 100 in
  Alcotest.(check int) "keystream length" 100 (String.length ks);
  Alcotest.(check string) "keystream deterministic" ks (Prf.keystream k ~nonce:"n" 100);
  Alcotest.(check bool) "keystream nonce matters" true
    (ks <> Prf.keystream k ~nonce:"m" 100);
  for bound = 1 to 50 do
    let v = Prf.uniform_int k (string_of_int bound) bound in
    Alcotest.(check bool) "uniform_int in range" true (v >= 0 && v < bound)
  done

(* --- Feistel -------------------------------------------------------------- *)

let test_feistel_bijection () =
  let key = Prf.key_of_string "feistel" in
  List.iter
    (fun domain ->
      let seen = Hashtbl.create domain in
      for x = 0 to domain - 1 do
        let y = Feistel.permute ~key ~domain x in
        Alcotest.(check bool) "in domain" true (y >= 0 && y < domain);
        Alcotest.(check bool) "injective" false (Hashtbl.mem seen y);
        Hashtbl.add seen y ();
        Alcotest.(check int) "inverse" x (Feistel.unpermute ~key ~domain y)
      done)
    [ 2; 3; 10; 100; 257 ]

let prop_feistel_roundtrip =
  Helpers.qtest "feistel roundtrip arbitrary domain"
    QCheck2.Gen.(pair (int_range 2 10_000) (int_bound 9_999))
    (fun (domain, x) ->
      let x = x mod domain in
      let key = Prf.key_of_string "prop" in
      Feistel.unpermute ~key ~domain (Feistel.permute ~key ~domain x) = x)

(* --- Det / Ndet ----------------------------------------------------------- *)

let test_det () =
  let k = Det.key_of_string "det" in
  let m = "hello world" in
  Alcotest.(check string) "roundtrip" m (Det.decrypt k (Det.encrypt k m));
  Alcotest.(check string) "deterministic" (Det.encrypt k m) (Det.encrypt k m);
  Alcotest.(check bool) "distinct plaintexts differ" true
    (Det.encrypt k "a" <> Det.encrypt k "b");
  Alcotest.(check bool) "keys matter" true
    (Det.encrypt k m <> Det.encrypt (Det.key_of_string "other") m);
  Alcotest.(check int) "length model" (String.length (Det.encrypt k m))
    (Det.ciphertext_length (String.length m));
  Alcotest.check_raises "tamper detected"
    (Invalid_argument "Det.decrypt: authentication failure") (fun () ->
      let c = Bytes.of_string (Det.encrypt k m) in
      Bytes.set c 9 (Char.chr (Char.code (Bytes.get c 9) lxor 1));
      ignore (Det.decrypt k (Bytes.to_string c)))

let test_ndet () =
  let k = Ndet.key_of_string "ndet" in
  let rng = Prng.create 4 in
  let m = "payload" in
  let c1 = Ndet.encrypt ~rng k m and c2 = Ndet.encrypt ~rng k m in
  Alcotest.(check bool) "randomized" true (c1 <> c2);
  Alcotest.(check string) "roundtrip 1" m (Ndet.decrypt k c1);
  Alcotest.(check string) "roundtrip 2" m (Ndet.decrypt k c2);
  Alcotest.(check string) "empty plaintext" "" (Ndet.decrypt k (Ndet.encrypt ~rng k ""));
  Alcotest.(check int) "length model" (String.length c1)
    (Ndet.ciphertext_length (String.length m))

(* --- Ope ------------------------------------------------------------------ *)

let test_ope_order () =
  let ope = Ope.create ~key:(Prf.key_of_string "ope") ~domain_bits:12 () in
  let prev = ref (-1) in
  for x = 0 to (1 lsl 12) - 1 do
    let c = Ope.encrypt ope x in
    Alcotest.(check bool) "strictly increasing" true (c > !prev);
    prev := c;
    Alcotest.(check int) "decrypt" x (Ope.decrypt ope c)
  done

let prop_ope_monotone =
  Helpers.qtest "ope preserves order"
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      let ope = Ope.create ~key:(Prf.key_of_string "p") ~domain_bits:16 () in
      compare (Ope.encrypt ope a) (Ope.encrypt ope b) = compare a b)

let test_ope_keys_differ () =
  let o1 = Ope.create ~key:(Prf.key_of_string "k1") ~domain_bits:16 () in
  let o2 = Ope.create ~key:(Prf.key_of_string "k2") ~domain_bits:16 () in
  let differs = ref false in
  for x = 0 to 100 do
    if Ope.encrypt o1 x <> Ope.encrypt o2 x then differs := true
  done;
  Alcotest.(check bool) "different keys give different mappings" true !differs

(* --- Ore ------------------------------------------------------------------ *)

let test_ore () =
  let ore = Ore.create ~key:(Prf.key_of_string "ore") ~bits:16 in
  let e = Ore.encrypt ore in
  Alcotest.(check int) "lt" (-1) (Ore.compare_ciphertexts (e 3) (e 77));
  Alcotest.(check int) "gt" 1 (Ore.compare_ciphertexts (e 1000) (e 77));
  Alcotest.(check int) "eq" 0 (Ore.compare_ciphertexts (e 77) (e 77));
  Alcotest.(check (option int)) "no diff when equal" None (Ore.first_diff_index (e 5) (e 5));
  (* 8 = 0b1000 and 12 = 0b1100 first differ at the bit worth 4, i.e. at
     msb-first position 16 - 1 - 2 = 13. *)
  Alcotest.(check (option int)) "first diff position" (Some 13)
    (Ore.first_diff_index (e 8) (e 12))

let prop_ore_order =
  Helpers.qtest "ore comparison equals plaintext order"
    QCheck2.Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      let ore = Ore.create ~key:(Prf.key_of_string "orep") ~bits:16 in
      Ore.compare_ciphertexts (Ore.encrypt ore a) (Ore.encrypt ore b) = compare a b)

(* --- Paillier -------------------------------------------------------------- *)

let test_paillier () =
  let prng = Prng.create 2024 in
  let kp = Paillier.key_gen ~prime_bits:32 prng in
  let pk = kp.Paillier.public in
  let c1 = Paillier.encrypt_int prng pk 1234 in
  let c2 = Paillier.encrypt_int prng pk 5678 in
  Alcotest.(check int) "roundtrip" 1234 (Paillier.decrypt_int kp c1);
  Alcotest.(check int) "homomorphic add" 6912 (Paillier.decrypt_int kp (Paillier.add pk c1 c2));
  Alcotest.(check int) "scalar mul" 12340
    (Paillier.decrypt_int kp (Paillier.scalar_mul pk c1 10));
  Alcotest.(check bool) "randomized" true
    (not (Snf_bignum.Nat.equal c1 (Paillier.encrypt_int prng pk 1234)));
  Alcotest.(check int) "zero" 0 (Paillier.decrypt_int kp (Paillier.encrypt_int prng pk 0))

let prop_paillier_add =
  let prng = Prng.create 77 in
  let kp = Paillier.key_gen ~prime_bits:32 prng in
  Helpers.qtest ~count:50 "paillier addition homomorphism"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let pk = kp.Paillier.public in
      let c = Paillier.add pk (Paillier.encrypt_int prng pk a) (Paillier.encrypt_int prng pk b) in
      Paillier.decrypt_int kp c = a + b)

(* One keypair per prime size, shared across the kernel cross-checks. *)
let kp48 = Paillier.key_gen ~prime_bits:48 (Prng.create 481)
let kp96 = Paillier.key_gen ~prime_bits:96 (Prng.create 961)

let test_paillier_kernels () =
  List.iter
    (fun (bits, kp) ->
      let pk = kp.Paillier.public in
      let prng = Prng.create (1000 + bits) in
      let label s = Printf.sprintf "%s (prime_bits=%d)" s bits in
      (* Montgomery encrypt and reference encrypt decrypt to the same
         plaintext under both decryption kernels. *)
      List.iter
        (fun m ->
          let mn = Snf_bignum.Nat.of_int m in
          let c_new = Paillier.encrypt prng pk mn in
          let c_ref = Paillier.encrypt_reference prng pk mn in
          Alcotest.(check int) (label "crt decrypt of mont encrypt") m
            (Paillier.decrypt_int kp c_new);
          Alcotest.(check int) (label "crt decrypt of ref encrypt") m
            (Paillier.decrypt_int kp c_ref);
          Alcotest.(check bool) (label "crt agrees with lambda/mu") true
            (Snf_bignum.Nat.equal (Paillier.decrypt kp c_new)
               (Paillier.decrypt_reference kp c_new)))
        [ 0; 1; 42; 999_983; 123_456_789 ];
      (* homomorphic roundtrips through the new kernels *)
      let a = 271_828 and b = 314_159 in
      let ca = Paillier.encrypt_int prng pk a in
      let cb = Paillier.encrypt_int prng pk b in
      Alcotest.(check int) (label "homomorphic add") (a + b)
        (Paillier.decrypt_int kp (Paillier.add pk ca cb));
      Alcotest.(check int) (label "scalar mul") (a * 7)
        (Paillier.decrypt_int kp (Paillier.scalar_mul pk ca 7)))
    [ (48, kp48); (96, kp96) ]

let test_paillier_pool () =
  let kp = kp48 in
  let pk = kp.Paillier.public in
  let key = Prf.key_of_string "pool-test" in
  let pool = Paillier.pool ~key pk in
  (* entries depend only on (key, index): raw computation, cached lookup
     and a freshly built pool all agree *)
  Paillier.pool_fill pool ~tabulate:Array.init 16;
  let pool' = Paillier.pool ~key pk in
  for i = 0 to 15 do
    Alcotest.(check bool) "cached = raw" true
      (Snf_bignum.Nat.equal (Paillier.pool_entry pool i) (Paillier.pool_raw_entry pool i));
    Alcotest.(check bool) "independent of fill" true
      (Snf_bignum.Nat.equal (Paillier.pool_entry pool i) (Paillier.pool_entry pool' i))
  done;
  Alcotest.(check bool) "distinct indexes, distinct randomizers" true
    (not (Snf_bignum.Nat.equal (Paillier.pool_entry pool 0) (Paillier.pool_entry pool 1)));
  (* pooled ciphertexts decrypt and compose like fresh ones *)
  let c0 = Paillier.encrypt_with pool 0 (Snf_bignum.Nat.of_int 1234) in
  let c1 = Paillier.encrypt_with pool 1 (Snf_bignum.Nat.of_int 5678) in
  Alcotest.(check int) "pooled roundtrip" 1234 (Paillier.decrypt_int kp c0);
  Alcotest.(check int) "pooled homomorphic add" 6912
    (Paillier.decrypt_int kp (Paillier.add pk c0 c1))

(* --- Scheme / Keyring ------------------------------------------------------ *)

let test_scheme_profiles () =
  Alcotest.(check bool) "ndet strong" true (Scheme.is_strong Scheme.Ndet);
  Alcotest.(check bool) "phe strong" true (Scheme.is_strong Scheme.Phe);
  Alcotest.(check bool) "det weak" true (Scheme.is_weak Scheme.Det);
  Alcotest.(check bool) "ope weak" true (Scheme.is_weak Scheme.Ope);
  Alcotest.(check bool) "plain weakest" true (Scheme.strictly_weaker Scheme.Plain Scheme.Det);
  Alcotest.(check bool) "ope weaker than det" true (Scheme.strictly_weaker Scheme.Ope Scheme.Det);
  Alcotest.(check bool) "det not weaker than ope" false
    (Scheme.strictly_weaker Scheme.Det Scheme.Ope);
  Alcotest.(check bool) "det supports eq" true (Scheme.supports_equality_predicate Scheme.Det);
  Alcotest.(check bool) "det no range" false (Scheme.supports_range_predicate Scheme.Det);
  Alcotest.(check bool) "ope range" true (Scheme.supports_range_predicate Scheme.Ope);
  List.iter
    (fun k ->
      Alcotest.(check (option string)) "of_string/to_string roundtrip"
        (Some (Scheme.to_string k))
        (Option.map Scheme.to_string (Scheme.of_string (Scheme.to_string k))))
    Scheme.all

let test_keyring () =
  let kr = Keyring.create ~master:"secret" in
  Alcotest.(check bool) "paths independent" true
    (Keyring.derive kr [ "a"; "b" ] <> Keyring.derive kr [ "ab" ]);
  Alcotest.(check bool) "path concat unambiguous" true
    (Keyring.derive kr [ "a"; "bc" ] <> Keyring.derive kr [ "ab"; "c" ]);
  Alcotest.(check bool) "deterministic" true
    (Keyring.derive kr [ "x" ] = Keyring.derive (Keyring.create ~master:"secret") [ "x" ])

let suite =
  [ t "prng determinism" test_prng_determinism;
    t "prng int bounds" test_prng_int_bounds;
    t "prng sampling" test_prng_sample;
    t "prng zipf" test_prng_zipf;
    t "prng shuffle" test_prng_shuffle_permutes;
    t "prng split" test_prng_split_independent;
    t "siphash vectors" test_siphash_vectors;
    t "prf misc" test_prf_misc;
    t "feistel bijection" test_feistel_bijection;
    prop_feistel_roundtrip;
    t "det" test_det;
    t "ndet" test_ndet;
    t "ope order exhaustive" test_ope_order;
    prop_ope_monotone;
    t "ope keys differ" test_ope_keys_differ;
    t "ore" test_ore;
    prop_ore_order;
    t "paillier" test_paillier;
    prop_paillier_add;
    t "paillier kernels 48/96" test_paillier_kernels;
    t "paillier randomizer pool" test_paillier_pool;
    t "scheme profiles" test_scheme_profiles;
    t "keyring" test_keyring ]

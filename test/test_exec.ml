open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme
module Partition = Snf_core.Partition

let t name f = Alcotest.test_case name `Quick f

let value = Alcotest.testable Value.pp Value.equal

let fixture () =
  let r = Helpers.example1_relation () in
  let rep =
    [ Partition.leaf "p0" [ ("State", Scheme.Ndet) ];
      Partition.leaf "p1" [ ("ZipCode", Scheme.Det); ("Income", Scheme.Ope) ] ]
  in
  let client =
    Enc_relation.make_client ~seed:5 ~relation_name:"ex1" ~master:"m" ()
  in
  (r, rep, client, Enc_relation.encrypt client r rep)

(* --- Enc_relation ------------------------------------------------------------ *)

let test_enc_roundtrip () =
  let r, _rep, client, enc = fixture () in
  List.iter
    (fun (leaf : Enc_relation.enc_leaf) ->
      let dec = Enc_relation.decrypt_leaf client leaf in
      Alcotest.(check int) "cardinality" (Relation.cardinality r) (Relation.cardinality dec);
      (* each decrypted row must match the original row its tid names *)
      Relation.iter_rows dec (fun _ row ->
          let tid = Value.to_int_exn row.(0) in
          let names = Schema.names (Relation.schema dec) in
          List.iteri
            (fun i a ->
              if a <> Partition.tid_name then
                Alcotest.check value "cell matches origin" (Relation.get r ~row:tid a) row.(i))
            names))
    enc.Enc_relation.leaves

let test_leaves_shuffled_independently () =
  let _, _, client, enc = fixture () in
  let slot_tids (l : Enc_relation.enc_leaf) =
    Array.to_list
      (Array.map (Enc_relation.decrypt_tid client ~leaf:l.Enc_relation.label) l.Enc_relation.tids)
  in
  match enc.Enc_relation.leaves with
  | [ l0; l1 ] ->
    let t0 = slot_tids l0 and t1 = slot_tids l1 in
    Alcotest.(check bool) "same tid sets" true
      (List.sort compare t0 = List.sort compare t1);
    Alcotest.(check bool) "different storage orders" true (t0 <> t1);
    Alcotest.(check bool) "neither is identity" true
      (t0 <> List.init (List.length t0) Fun.id || t1 <> List.init (List.length t1) Fun.id)
  | _ -> Alcotest.fail "expected two leaves"

let test_row_position_inverse () =
  let _, _, client, enc = fixture () in
  List.iter
    (fun (l : Enc_relation.enc_leaf) ->
      let n = l.Enc_relation.row_count in
      for tid = 0 to n - 1 do
        let slot = Enc_relation.row_position client ~leaf:l.Enc_relation.label ~rows:n tid in
        Alcotest.(check int) "tid_at inverts row_position" tid
          (Enc_relation.tid_at client ~leaf:l.Enc_relation.label ~rows:n slot);
        Alcotest.(check int) "stored tid matches permutation" tid
          (Enc_relation.decrypt_tid client ~leaf:l.Enc_relation.label
             l.Enc_relation.tids.(slot))
      done)
    enc.Enc_relation.leaves

let test_det_column_reveals_equality_only () =
  let r, _, _, enc = fixture () in
  let leaf = Enc_relation.find_leaf enc "p1" in
  let col = Enc_relation.column leaf "ZipCode" in
  let cts =
    Array.to_list
      (Array.map
         (function Enc_relation.C_bytes b -> b | _ -> Alcotest.fail "expected bytes")
         col.Enc_relation.cells)
  in
  let distinct = List.sort_uniq String.compare cts in
  let plaintext_distinct =
    List.sort_uniq compare (Array.to_list (Relation.column r "ZipCode"))
  in
  Alcotest.(check int) "ciphertext multiset mirrors plaintext multiset"
    (List.length plaintext_distinct) (List.length distinct)

let test_tokens () =
  let _, _, client, enc = fixture () in
  let leaf = Enc_relation.find_leaf enc "p1" in
  let zip = Enc_relation.column leaf "ZipCode" in
  (match
     Enc_relation.eq_token client ~leaf:"p1" ~attr:"ZipCode" ~scheme:Scheme.Det
       (Value.Int 94016)
   with
   | Some tok ->
     let hits =
       Array.fold_left
         (fun acc cell -> if Enc_relation.cell_matches_eq tok cell then acc + 1 else acc)
         0 zip.Enc_relation.cells
     in
     Alcotest.(check int) "det token matches exactly the equal cells" 2 hits
   | None -> Alcotest.fail "expected a DET token");
  (match
     Enc_relation.range_token client ~leaf:"p1" ~attr:"Income" ~scheme:Scheme.Ope
       ~lo:(Value.Int 80) ~hi:(Value.Int 120)
   with
   | Some tok ->
     let income = Enc_relation.column leaf "Income" in
     let hits =
       Array.fold_left
         (fun acc cell -> if Enc_relation.cell_in_range tok cell then acc + 1 else acc)
         0 income.Enc_relation.cells
     in
     Alcotest.(check int) "range token hits 80..120" 3 hits
   | None -> Alcotest.fail "expected an OPE range token");
  Alcotest.(check bool) "ndet has no eq token" true
    (Enc_relation.eq_token client ~leaf:"p0" ~attr:"State" ~scheme:Scheme.Ndet
       (Value.Text "CA")
    = None);
  Alcotest.(check bool) "det has no range token" true
    (Enc_relation.range_token client ~leaf:"p1" ~attr:"ZipCode" ~scheme:Scheme.Det
       ~lo:(Value.Int 0) ~hi:(Value.Int 1)
    = None)

let test_phe_sum () =
  let r = Helpers.example1_relation () in
  let rep = [ Partition.leaf "agg" [ ("Income", Scheme.Phe); ("State", Scheme.Ndet);
                                     ("ZipCode", Scheme.Det) ] ] in
  let client = Enc_relation.make_client ~seed:6 ~relation_name:"agg" ~master:"m" () in
  let enc = Enc_relation.encrypt client r rep in
  let leaf = Enc_relation.find_leaf enc "agg" in
  let c = Enc_relation.phe_sum enc leaf "Income" in
  let expected = Snf_relational.Algebra.sum_int "Income" r in
  let kp = Enc_relation.client_paillier client in
  Alcotest.(check int) "homomorphic sum" expected
    (Snf_bignum.Nat.to_int_exn (Snf_crypto.Paillier.decrypt kp c))

let test_storage_model_consistency () =
  let r, rep, _, enc = fixture () in
  Alcotest.(check int) "simulation accounting matches measured bytes"
    (Storage_model.representation_bytes Storage_model.Simulation r rep)
    (Enc_relation.measured_bytes enc);
  Alcotest.(check bool) "deployment dominates plaintext" true
    (Storage_model.representation_bytes Storage_model.Deployment r rep
    > Storage_model.relation_plaintext_bytes r)

(* --- Planner -------------------------------------------------------------------- *)

let test_planner_single_leaf () =
  let _, rep, _, _ = fixture () in
  let q = Query.point ~select:[ "Income" ] [ ("ZipCode", Value.Int 94016) ] in
  match Planner.plan rep q with
  | Ok p ->
    Alcotest.(check int) "no join needed" 0 p.Planner.joins;
    Alcotest.(check (list string)) "one leaf" [ "p1" ] p.Planner.leaves
  | Error e -> Alcotest.fail e

let test_planner_cross_leaf () =
  let _, rep, _, _ = fixture () in
  let q = Query.point ~select:[ "State" ] [ ("ZipCode", Value.Int 94016) ] in
  match Planner.plan rep q with
  | Ok p ->
    Alcotest.(check int) "one join" 1 p.Planner.joins;
    Alcotest.(check bool) "zip predicate homed at p1" true
      (List.exists (fun (_, l) -> l = "p1") p.Planner.pred_home)
  | Error e -> Alcotest.fail e

let test_planner_infeasible () =
  (* Predicate on an NDET-only attribute is not server-evaluable. *)
  let rep = [ Partition.leaf "p0" [ ("State", Scheme.Ndet) ] ] in
  let q = Query.point ~select:[ "State" ] [ ("State", Value.Text "CA") ] in
  Alcotest.(check bool) "unsupported predicate rejected" true
    (Result.is_error (Planner.plan rep q));
  let q2 = Query.point ~select:[ "Ghost" ] [] in
  Alcotest.(check bool) "unknown attribute rejected" true
    (Result.is_error (Planner.plan rep q2))

let test_planner_range_needs_order () =
  let rep =
    [ Partition.leaf "d" [ ("x", Scheme.Det) ]; Partition.leaf "o" [ ("x", Scheme.Ope) ] ]
  in
  let q = Query.range ~select:[ "x" ] [ ("x", Value.Int 0, Value.Int 5) ] in
  match Planner.plan rep q with
  | Ok p ->
    Alcotest.(check (list string)) "range homed at the OPE copy" [ "o" ] p.Planner.leaves
  | Error e -> Alcotest.fail e

let test_planner_optimal_beats_greedy_cover () =
  (* Greedy picks the wide leaf first; optimal with a leaf-count cost can
     pick the same or better — check it returns a minimal cover. *)
  let rep =
    [ Partition.leaf "wide" [ ("a", Scheme.Det); ("b", Scheme.Det) ];
      Partition.leaf "extra" [ ("c", Scheme.Det) ] ]
  in
  let q = Query.point ~select:[ "a"; "b"; "c" ] [] in
  match
    Planner.plan
      ~handle:(Planner.optimal (fun p -> float_of_int (List.length p.Planner.leaves)))
      rep q
  with
  | Ok p -> Alcotest.(check int) "two leaves suffice" 2 (List.length p.Planner.leaves)
  | Error e -> Alcotest.fail e

(* --- Oblivious_join ---------------------------------------------------------------- *)

let test_join_indices () =
  let _, _, client, enc = fixture () in
  let a = Enc_relation.find_leaf enc "p0" and b = Enc_relation.find_leaf enc "p1" in
  let stats = Oblivious_join.fresh_stats () in
  let pairs = Oblivious_join.join_indices stats client a b in
  Alcotest.(check int) "all tids match" 6 (Array.length pairs);
  Array.iter
    (fun (tid, ra, rb) ->
      Alcotest.(check int) "left slot holds tid" tid
        (Enc_relation.decrypt_tid client ~leaf:"p0" a.Enc_relation.tids.(ra));
      Alcotest.(check int) "right slot holds tid" tid
        (Enc_relation.decrypt_tid client ~leaf:"p1" b.Enc_relation.tids.(rb)))
    pairs;
  Alcotest.(check int) "one join charged" 1 stats.Oblivious_join.joins;
  Alcotest.(check bool) "comparisons counted" true (stats.Oblivious_join.comparisons > 0);
  (* masks hide rows *)
  let mask = Array.make 6 false in
  mask.(0) <- true;
  let stats2 = Oblivious_join.fresh_stats () in
  let masked = Oblivious_join.join_indices ~mask_a:mask stats2 client a b in
  Alcotest.(check int) "mask filters output" 1 (Array.length masked);
  Alcotest.(check int) "but the network always processes everything"
    stats.Oblivious_join.comparisons stats2.Oblivious_join.comparisons

let suite =
  [ t "enc roundtrip" test_enc_roundtrip;
    t "leaves shuffled independently" test_leaves_shuffled_independently;
    t "row position inverse" test_row_position_inverse;
    t "det mirrors equality only" test_det_column_reveals_equality_only;
    t "predicate tokens" test_tokens;
    t "phe sum" test_phe_sum;
    t "storage model consistency" test_storage_model_consistency;
    t "planner single leaf" test_planner_single_leaf;
    t "planner cross leaf" test_planner_cross_leaf;
    t "planner infeasible" test_planner_infeasible;
    t "planner range needs order" test_planner_range_needs_order;
    t "planner optimal cover" test_planner_optimal_beats_greedy_cover;
    t "oblivious join indices" test_join_indices ]

(* Executor edge cases: the empty relation, predicates matching zero rows
   and all rows, across every reconstruction mode — with the returned
   trace checked against the process-wide exec.query.* counters. *)

open Helpers
open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme
module Metrics = Snf_obs.Metrics

let names = [ "A"; "B"; "C" ]

let policy () =
  Snf_core.Policy.create
    [ ("A", Scheme.Det); ("B", Scheme.Ope); ("C", Scheme.Ndet) ]

let graph () =
  let g = ref (Snf_deps.Dep_graph.create names) in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> if i < j then g := Snf_deps.Dep_graph.declare_independent !g a b)
        names)
    names;
  !g

let outsource ?(name = "edge") rows =
  System.outsource ~name ~graph:(graph ()) (relation_of_int_rows names rows) (policy ())

let modes = [ (`Sort_merge, "sort-merge"); (`Oram, "oram"); (`Binning 4, "binning") ]

(* The counter deltas one query moved must equal its returned trace. *)
let query_with_counter_check ?use_index owner ~mode ~tag q =
  let before = Metrics.snapshot () in
  match System.query ~mode ?use_index owner q with
  | Error e -> Alcotest.failf "%s: %s" tag e
  | Ok (ans, trace) ->
    let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
    let d name = Option.value (List.assoc_opt name deltas) ~default:0 in
    List.iter
      (fun (counter, want) ->
        check_int (Printf.sprintf "%s: %s" tag counter) want (d counter))
      [ ("exec.query.count", 1);
        ("exec.query.scanned_cells", trace.Executor.scanned_cells);
        ("exec.query.index_probes", trace.Executor.index_probes);
        ("exec.query.comparisons", trace.Executor.comparisons);
        ("exec.query.rows_processed", trace.Executor.rows_processed);
        ("exec.query.result_rows", trace.Executor.result_rows) ];
    check_int (Printf.sprintf "%s: trace.result_rows is the answer size" tag)
      (Relation.cardinality ans) trace.Executor.result_rows;
    ans

let empty_relation () =
  let owner = outsource ~name:"edge-empty" [] in
  List.iter
    (fun (mode, tag) ->
      let scan =
        query_with_counter_check owner ~mode ~tag:(tag ^ " scan")
          { Query.select = [ "A"; "B"; "C" ]; where = [] }
      in
      check_int (tag ^ ": empty scan") 0 (Relation.cardinality scan);
      let point =
        query_with_counter_check owner ~mode ~tag:(tag ^ " point")
          (Query.point ~select:[ "B" ] [ ("A", Value.Int 1) ])
      in
      check_int (tag ^ ": empty point") 0 (Relation.cardinality point))
    modes

let rows = [ [ 1; 10; 7 ]; [ 1; 20; 7 ]; [ 2; 30; 7 ]; [ 3; 40; 7 ]; [ 1; 50; 7 ] ]

let zero_row_match () =
  let owner = outsource ~name:"edge-zero" rows in
  List.iter
    (fun (mode, tag) ->
      List.iter
        (fun use_index ->
          let ans =
            query_with_counter_check ~use_index owner ~mode
              ~tag:(Printf.sprintf "%s idx=%b" tag use_index)
              (Query.point ~select:[ "A"; "B" ] [ ("A", Value.Int 99) ])
          in
          check_int (tag ^ ": no row matches") 0 (Relation.cardinality ans))
        [ false; true ])
    modes

let all_rows_match () =
  let owner = outsource ~name:"edge-all" rows in
  List.iter
    (fun (mode, tag) ->
      let ans =
        query_with_counter_check owner ~mode ~tag
          { Query.select = [ "A"; "B"; "C" ];
            where = [ Query.Range ("B", Value.Int 0, Value.Int 1000) ] }
      in
      check_int (tag ^ ": every row matches") (List.length rows)
        (Relation.cardinality ans);
      check_same_bag (tag ^ ": matches reference") (System.reference owner
        { Query.select = [ "A"; "B"; "C" ];
          where = [ Query.Range ("B", Value.Int 0, Value.Int 1000) ] })
        ans)
    modes

let single_row_relation () =
  let owner = outsource ~name:"edge-one" [ [ 5; 6; 7 ] ] in
  List.iter
    (fun (mode, tag) ->
      let ans =
        query_with_counter_check owner ~mode ~tag
          (Query.point ~select:[ "C" ] [ ("A", Value.Int 5) ])
      in
      check_int (tag ^ ": singleton hit") 1 (Relation.cardinality ans))
    modes

let spans_cover_phases () =
  (* With spans on, one query must record the executor's phase spans; the
     recorder is global state, so snapshot-and-restore around the test. *)
  Snf_obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Snf_obs.Span.set_enabled false)
    (fun () ->
      let owner = outsource ~name:"edge-span" rows in
      (match System.query owner (Query.point ~select:[ "B" ] [ ("A", Value.Int 1) ]) with
       | Ok _ -> ()
       | Error e -> Alcotest.fail e);
      Snf_obs.flush ();
      let events = Snf_obs.Span.events () in
      let seen name =
        List.exists (fun (e : Snf_obs.Span.event) -> e.Snf_obs.Span.name = name) events
      in
      List.iter
        (fun phase -> check_bool ("span " ^ phase) true (seen phase))
        [ "query"; "query.mint_tokens"; "query.server_filter"; "query.client_decrypt" ])

let suite =
  [ Alcotest.test_case "empty relation, all modes" `Quick empty_relation;
    Alcotest.test_case "zero-row match, all modes" `Quick zero_row_match;
    Alcotest.test_case "all-rows match, all modes" `Quick all_rows_match;
    Alcotest.test_case "single-row relation" `Quick single_row_relation;
    Alcotest.test_case "spans cover the executor phases" `Quick spans_cover_phases ]

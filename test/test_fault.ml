(* Fault injection: every class of storage corruption must surface as the
   typed Integrity.Corruption — never as a silently wrong answer. *)

open Helpers
open Snf_relational
open Snf_exec
open Snf_check
module Scheme = Snf_crypto.Scheme

let specs =
  [ { Gen.seed = 11; rows = 12; clusters = [ 3 ]; singles = 3 };
    { Gen.seed = 23; rows = 8; clusters = [ 2; 2 ]; singles = 4 };
    { Gen.seed = 5077; rows = 20; clusters = []; singles = 5 } ]

let campaign_detects_everything () =
  List.iter
    (fun spec ->
      let inst = Gen.instance spec in
      let outcomes = Fault.campaign ~seed:spec.Gen.seed inst in
      check_int
        (Printf.sprintf "%s: all classes attempted" (Gen.spec_to_string spec))
        (List.length Fault.all) (List.length outcomes);
      List.iter
        (fun (o : Fault.outcome) ->
          if o.Fault.applicable && not o.Fault.detected then
            Alcotest.failf "%s: %s NOT detected — %s" (Gen.spec_to_string spec)
              (Fault.name o.Fault.kind) o.Fault.detail)
        outcomes)
    specs;
  (* The campaign must really exercise every class somewhere. *)
  let applicable =
    List.concat_map
      (fun spec -> Fault.campaign ~seed:spec.Gen.seed (Gen.instance spec))
      specs
    |> List.filter (fun (o : Fault.outcome) -> o.Fault.applicable)
    |> List.map (fun (o : Fault.outcome) -> Fault.name o.Fault.kind)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string))
    "every fault class applicable in some instance"
    (List.sort_uniq String.compare (List.map Fault.name Fault.all))
    applicable

(* A small deterministic system for targeted, per-where assertions. *)
let det_system name =
  let r = relation_of_int_rows [ "A"; "B" ] [ [ 1; 10 ]; [ 2; 20 ]; [ 1; 30 ] ] in
  let policy =
    Snf_core.Policy.create [ ("A", Scheme.Det); ("B", Scheme.Ndet) ]
  in
  let g = Snf_deps.Dep_graph.create [ "A"; "B" ] in
  let g = Snf_deps.Dep_graph.declare_independent g "A" "B" in
  System.outsource_prepared ~name ~graph:g
    ~representation:
      [ Snf_core.Partition.leaf "l0" [ ("A", Scheme.Det) ];
        Snf_core.Partition.leaf "l1" [ ("B", Scheme.Ndet) ] ]
    r policy

let expect_corruption ~where ?use_index owner q =
  match System.query_checked ?use_index owner q with
  | Error (`Corruption c) ->
    check_string "corruption site" where c.Integrity.where;
    check_bool "printable" true (String.length (Integrity.to_string c) > 0)
  | Error (`Plan e) -> Alcotest.failf "planner error, not detection: %s" e
  | Ok (ans, _) ->
    Alcotest.failf "undetected: got %d rows from a damaged store"
      (Relation.cardinality ans)

let scan = { Query.select = [ "A"; "B" ]; where = [] }

let flipped_cell_where () =
  let owner = det_system "fault-cell" in
  let enc, _ = Fault.flip_cell ~seed:4 owner.System.enc ~leaf:"l0" ~attr:"A" in
  expect_corruption ~where:"cell" { owner with System.enc } scan

let flipped_tid_where () =
  let owner = det_system "fault-tid" in
  let enc, _ = Fault.flip_tid ~seed:4 owner.System.enc ~leaf:"l0" in
  expect_corruption ~where:"tid" { owner with System.enc } scan

let truncated_leaf_where () =
  let owner = det_system "fault-trunc" in
  let enc = Fault.truncate_leaf owner.System.enc ~leaf:"l1" in
  expect_corruption ~where:"leaf" { owner with System.enc } scan

let dropped_leaf_where () =
  let owner = det_system "fault-drop" in
  let enc = Fault.drop_leaf owner.System.enc ~leaf:"l1" in
  expect_corruption ~where:"store" { owner with System.enc } scan

let stale_index_where () =
  let owner = det_system "fault-stale" in
  let key v =
    match
      Enc_relation.eq_token owner.System.client ~leaf:"l0" ~attr:"A"
        ~scheme:Scheme.Det (Value.Int v)
    with
    | Some tok -> Option.get (Enc_relation.index_key_of_token tok)
    | None -> Alcotest.fail "no token for a DET column"
  in
  check_bool "index poisoned" true
    (Fault.poison_index owner.System.enc ~leaf:"l0" ~attr:"A" ~key_a:(key 1)
       ~key_b:(key 2));
  expect_corruption ~where:"index" ~use_index:true owner
    (Query.point ~select:[ "A" ] [ ("A", Value.Int 1) ])

let key_mismatch_where () =
  let owner = det_system "fault-key" in
  let impostor = Fault.mismatched_client ~name:"fault-key" in
  (* A single-leaf projection: the first decrypt under the wrong key is a
     cell (the two-leaf join path would already die at a tid decrypt). *)
  expect_corruption ~where:"cell" { owner with System.client = impostor }
    { Query.select = [ "A" ]; where = [] }

let honest_store_unflagged () =
  (* The detection machinery must not fire on an intact store. *)
  let owner = det_system "fault-honest" in
  List.iter
    (fun use_index ->
      match System.query_checked ~use_index owner scan with
      | Ok (ans, _) -> check_int "full answer" 3 (Relation.cardinality ans)
      | Error (`Plan e) -> Alcotest.fail e
      | Error (`Corruption c) ->
        Alcotest.failf "false positive: %s" (Integrity.to_string c))
    [ false; true ]

let plain_flip_is_inert () =
  (* PLAIN carries no cryptographic protection, so corrupt_cell leaves it
     alone (and the campaign never picks PLAIN/PHE as flip targets): a
     "flip" on a PLAIN column must change nothing — the documented
     exclusion, not a silent wrong answer. *)
  let r = relation_of_int_rows [ "A"; "P" ] [ [ 1; 10 ]; [ 2; 20 ] ] in
  let policy =
    Snf_core.Policy.create [ ("A", Scheme.Det); ("P", Scheme.Plain) ]
  in
  let g = Snf_deps.Dep_graph.declare_independent
      (Snf_deps.Dep_graph.create [ "A"; "P" ]) "A" "P"
  in
  let owner =
    System.outsource_prepared ~name:"fault-plain" ~graph:g
      ~representation:
        [ Snf_core.Partition.leaf "l0" [ ("A", Scheme.Det); ("P", Scheme.Plain) ] ]
      r policy
  in
  let enc, _ = Fault.flip_cell ~seed:8 owner.System.enc ~leaf:"l0" ~attr:"P" in
  match System.query_checked { owner with System.enc }
          { Query.select = [ "A"; "P" ]; where = [] }
  with
  | Ok (ans, _) ->
    check_same_bag "PLAIN column untouched by the injector" r ans
  | Error (`Plan e) -> Alcotest.fail e
  | Error (`Corruption c) ->
    Alcotest.failf "PLAIN flip should be inert: %s" (Integrity.to_string c)

let suite =
  [ Alcotest.test_case "campaign: applicable ⇒ detected" `Slow
      campaign_detects_everything;
    Alcotest.test_case "flipped cell → where=cell" `Quick flipped_cell_where;
    Alcotest.test_case "flipped tid → where=tid" `Quick flipped_tid_where;
    Alcotest.test_case "truncated leaf → where=leaf" `Quick truncated_leaf_where;
    Alcotest.test_case "dropped leaf → where=store" `Quick dropped_leaf_where;
    Alcotest.test_case "stale index → where=index" `Quick stale_index_where;
    Alcotest.test_case "key mismatch → where=cell" `Quick key_mismatch_where;
    Alcotest.test_case "honest store never flagged" `Quick honest_store_unflagged;
    Alcotest.test_case "PLAIN flip is inert (documented exclusion)" `Quick
      plain_flip_is_inert ]

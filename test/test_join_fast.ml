(* The PR-4 join hot path: the monomorphic parallel bitonic network, the
   packed sort keys, the per-leaf tid-decrypt cache and the single-pass
   k-way join — each checked against its reference implementation. *)

open Snf_exec
module Metrics = Snf_obs.Metrics
module H = Helpers

let m_hits = Metrics.counter "exec.join.tid_cache.hits"
let m_misses = Metrics.counter "exec.join.tid_cache.misses"

(* --- sort_ints vs the generic network ------------------------------------- *)

let sorted_by_list arr =
  List.sort Int.compare (Array.to_list arr) = Array.to_list arr

let test_sort_ints_matches_list_sort =
  H.qtest ~count:300 "sort_ints agrees with List.sort"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range (-50) 50))
    (fun l ->
      let arr = Array.of_list l in
      Bitonic.sort_ints arr;
      arr = Array.of_list (List.sort Int.compare l))

let test_sort_ints_counter_matches_generic =
  H.qtest ~count:100 "sort_ints ticks = generic network ticks"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun l ->
      let a1 = Array.of_list l and a2 = Array.of_list l in
      let c1 = ref 0 and c2 = ref 0 in
      Bitonic.sort_ints ~counter:c1 a1;
      Bitonic.sort ~counter:c2 ~cmp:Int.compare a2;
      a1 = a2 && !c1 = !c2)

let test_sort_ints_fixed () =
  let check_case name input =
    let arr = Array.of_list input in
    Bitonic.sort_ints arr;
    Alcotest.(check (list int)) name (List.sort Int.compare input) (Array.to_list arr)
  in
  check_case "empty" [];
  check_case "singleton" [ 42 ];
  check_case "pair" [ 2; 1 ];
  check_case "already sorted" (List.init 100 Fun.id);
  check_case "reverse" (List.init 100 (fun i -> 99 - i));
  check_case "all duplicates" (List.init 37 (fun _ -> 7));
  check_case "non-power-of-two" (List.init 1000 (fun i -> (i * 7919) mod 211));
  check_case "negatives" [ 3; -1; 0; -7; 5; -7 ]

let test_sort_ints_counter_at_pow2 () =
  (* Without padding every comparator fires on two real elements, so the
     observed tick count is the closed form. *)
  let n = 256 in
  let arr = Array.init n (fun i -> (i * 31) mod 97) in
  let c = ref 0 in
  Bitonic.sort_ints ~counter:c arr;
  H.check_int "ticks = comparator_count at power-of-two size"
    (Bitonic.comparator_count n) !c

let test_next_pow2_edges () =
  H.check_int "next_pow2 0" 1 (Bitonic.next_pow2 0);
  H.check_int "next_pow2 1" 1 (Bitonic.next_pow2 1);
  H.check_int "next_pow2 3" 4 (Bitonic.next_pow2 3);
  H.check_int "next_pow2 4" 4 (Bitonic.next_pow2 4);
  H.check_int "next_pow2 at the cap" (1 lsl 61) (Bitonic.next_pow2 (1 lsl 61));
  Alcotest.check_raises "negative length" (Invalid_argument "Bitonic.next_pow2: negative length")
    (fun () -> ignore (Bitonic.next_pow2 (-1)));
  (try
     ignore (Bitonic.next_pow2 ((1 lsl 61) + 1));
     Alcotest.fail "next_pow2 above the cap must raise"
   with Invalid_argument _ -> ())

let test_comparator_count_edges () =
  H.check_int "count 0" 0 (Bitonic.comparator_count 0);
  H.check_int "count 1" 0 (Bitonic.comparator_count 1);
  H.check_int "count 2" 1 (Bitonic.comparator_count 2);
  H.check_int "count 4" 6 (Bitonic.comparator_count 4);
  H.check_int "count 3 (padded to 4)" 6 (Bitonic.comparator_count 3);
  H.check_int "count 8" 24 (Bitonic.comparator_count 8);
  (* Large m would overflow the closed form; it must refuse, not wrap. *)
  (try
     ignore (Bitonic.comparator_count (1 lsl 61));
     Alcotest.fail "comparator_count at 2^61 must raise"
   with Invalid_argument _ -> ())

(* --- packed keys ----------------------------------------------------------- *)

let test_packed_roundtrip =
  H.qtest ~count:300 "packed key round-trip"
    QCheck2.Gen.(
      tup4
        (int_range 0 Oblivious_join.Packed.max_tid)
        (int_range 0 Oblivious_join.Packed.max_side)
        (int_range 0 Oblivious_join.Packed.max_row)
        bool)
    (fun (tid, side, row, selected) ->
      let e = Oblivious_join.Packed.encode ~tid ~side ~row ~selected in
      Oblivious_join.Packed.tid e = tid
      && Oblivious_join.Packed.side e = side
      && Oblivious_join.Packed.row e = row
      && Oblivious_join.Packed.selected e = selected
      && e < max_int)

let test_packed_order =
  (* Plain int order on packed keys must be (tid, side) order. *)
  H.qtest ~count:300 "packed keys sort like (tid, side)"
    QCheck2.Gen.(
      tup2
        (tup3 (int_range 0 1000) (int_range 0 3) (int_range 0 1000))
        (tup3 (int_range 0 1000) (int_range 0 3) (int_range 0 1000)))
    (fun ((t1, s1, r1), (t2, s2, r2)) ->
      let e1 = Oblivious_join.Packed.encode ~tid:t1 ~side:s1 ~row:r1 ~selected:true in
      let e2 = Oblivious_join.Packed.encode ~tid:t2 ~side:s2 ~row:r2 ~selected:true in
      let key_order = compare (t1, s1) (t2, s2) in
      if key_order < 0 then e1 < e2
      else if key_order > 0 then e1 > e2
      else true)

let test_packed_bounds () =
  let open Oblivious_join.Packed in
  let e = encode ~tid:max_tid ~side:max_side ~row:max_row ~selected:true in
  H.check_bool "max fields stay below the sentinel" true (e < max_int);
  H.check_int "max tid survives" max_tid (tid e);
  H.check_int "max side survives" max_side (side e);
  H.check_int "max row survives" max_row (row e);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  H.check_bool "tid above bound" true
    (raises (fun () -> encode ~tid:(max_tid + 1) ~side:0 ~row:0 ~selected:true));
  H.check_bool "negative tid" true
    (raises (fun () -> encode ~tid:(-1) ~side:0 ~row:0 ~selected:true));
  H.check_bool "side above bound" true
    (raises (fun () -> encode ~tid:0 ~side:(max_side + 1) ~row:0 ~selected:true));
  H.check_bool "row above bound" true
    (raises (fun () -> encode ~tid:0 ~side:0 ~row:(max_row + 1) ~selected:true))

(* --- a small encrypted instance -------------------------------------------- *)

let make_owner ?(rows = 60) ?(name = "joinfast") () =
  let r =
    H.relation_of_int_rows [ "a"; "b"; "c" ]
      (List.init rows (fun i -> [ i mod 11; i * 13; i mod 7 ]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("a", Snf_crypto.Scheme.Det);
        ("b", Snf_crypto.Scheme.Ndet);
        ("c", Snf_crypto.Scheme.Det) ]
  in
  let g = Snf_deps.Dep_graph.create [ "a"; "b"; "c" ] in
  let g = Snf_deps.Dep_graph.declare_dependent g "a" "b" in
  let g = Snf_deps.Dep_graph.declare_dependent g "b" "c" in
  (System.outsource ~name ~graph:g r policy, r)

(* --- tid-decrypt cache ------------------------------------------------------ *)

let test_tid_cache_hits_and_misses () =
  let owner, _ = make_owner () in
  let client = owner.System.client in
  let leaf = List.hd owner.System.enc.Enc_relation.leaves in
  let h0 = Metrics.value m_hits and m0 = Metrics.value m_misses in
  let d1 = Enc_relation.decrypt_tids_cached client leaf in
  H.check_int "first lookup misses" (m0 + 1) (Metrics.value m_misses);
  let d2 = Enc_relation.decrypt_tids_cached client leaf in
  H.check_int "second lookup hits" (h0 + 1) (Metrics.value m_hits);
  H.check_bool "hit returns the same array" true (d1 == d2);
  H.check_bool "cached tids equal uncached decrypt" true
    (d1 = Enc_relation.decrypt_tids client leaf)

let test_tid_cache_epoch_invalidation () =
  let owner, _ = make_owner ~name:"joinfast.epoch" () in
  let client = owner.System.client in
  let leaf = List.hd owner.System.enc.Enc_relation.leaves in
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  let epoch0 = Enc_relation.key_epoch client in
  Enc_relation.bump_key_epoch client;
  H.check_int "epoch bumped" (epoch0 + 1) (Enc_relation.key_epoch client);
  let m0 = Metrics.value m_misses in
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  H.check_int "post-bump lookup misses again" (m0 + 1) (Metrics.value m_misses)

let test_tid_cache_reencrypt_invalidation () =
  let owner, r = make_owner ~name:"joinfast.reenc" () in
  let client = owner.System.client in
  let leaf = List.hd owner.System.enc.Enc_relation.leaves in
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  let epoch0 = Enc_relation.key_epoch client in
  let rep = owner.System.plan.Snf_core.Normalizer.representation in
  ignore (Enc_relation.encrypt client r rep);
  H.check_bool "encrypt bumps the key epoch" true
    (Enc_relation.key_epoch client > epoch0);
  let m0 = Metrics.value m_misses in
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  H.check_int "post-encrypt lookup misses" (m0 + 1) (Metrics.value m_misses)

let test_tid_cache_physical_identity () =
  (* A copied leaf (what fault injection and wire round-trips produce) has
     equal contents but a different tids array — it must MISS, so a
     corrupted store is still decrypted and authenticated afresh. *)
  let owner, _ = make_owner ~name:"joinfast.phys" () in
  let client = owner.System.client in
  let leaf = List.hd owner.System.enc.Enc_relation.leaves in
  ignore (Enc_relation.decrypt_tids_cached client leaf);
  let copy = { leaf with Enc_relation.tids = Array.copy leaf.Enc_relation.tids } in
  let m0 = Metrics.value m_misses in
  ignore (Enc_relation.decrypt_tids_cached client copy);
  H.check_int "copied leaf misses despite equal label+epoch" (m0 + 1)
    (Metrics.value m_misses)

(* --- k-way join vs the cascade --------------------------------------------- *)

let join_results_equal owner masks =
  let client = owner.System.client in
  let s1 = Oblivious_join.fresh_stats () in
  let s2 = Oblivious_join.fresh_stats () in
  let kway = Oblivious_join.join_many ~masks s1 client in
  let cascade = Oblivious_join.join_many_cascade ~masks s2 client in
  kway = cascade

let test_kway_matches_cascade_all_true () =
  let owner, _ = make_owner () in
  let masks =
    List.map
      (fun (l : Enc_relation.enc_leaf) -> (l, Array.make l.Enc_relation.row_count true))
      owner.System.enc.Enc_relation.leaves
  in
  H.check_bool "k-way = cascade (all rows selected)" true
    (join_results_equal owner masks)

let test_kway_matches_cascade_random_masks =
  H.qtest ~count:30 "k-way = cascade under random masks"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let owner, _ = make_owner ~rows:40 ~name:(Printf.sprintf "joinfast.m%d" seed) () in
      let prng = Snf_crypto.Prng.create seed in
      let masks =
        List.map
          (fun (l : Enc_relation.enc_leaf) ->
            ( l,
              Array.init l.Enc_relation.row_count (fun _ ->
                  Snf_crypto.Prng.int prng 4 > 0) ))
          owner.System.enc.Enc_relation.leaves
      in
      join_results_equal owner masks)

let test_kway_stats_single_pass () =
  (* The k-way pass is charged as ONE join over the summed entries, where
     the cascade charged k-1 pairwise joins. *)
  let owner, _ = make_owner () in
  let leaves = owner.System.enc.Enc_relation.leaves in
  let k = List.length leaves in
  if k >= 2 then begin
    let masks =
      List.map
        (fun (l : Enc_relation.enc_leaf) ->
          (l, Array.make l.Enc_relation.row_count true))
        leaves
    in
    let s1 = Oblivious_join.fresh_stats () in
    ignore (Oblivious_join.join_many ~masks s1 owner.System.client);
    H.check_int "one join per k-way pass" 1 s1.Oblivious_join.joins;
    let s2 = Oblivious_join.fresh_stats () in
    ignore (Oblivious_join.join_many_cascade ~masks s2 owner.System.client);
    H.check_int "cascade charges k-1 joins" (k - 1) s2.Oblivious_join.joins
  end

(* --- end-to-end: cache and domain count are invisible ----------------------- *)

let with_domains domains f =
  let saved = Parallel.domain_count () in
  Parallel.set_domain_count domains;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved) f

let test_query_cache_and_domains_invisible () =
  let owner, _ = make_owner ~rows:120 ~name:"joinfast.e2e" () in
  let q =
    Query.point ~select:[ "b" ]
      [ ("a", Snf_relational.Value.Int 5); ("c", Snf_relational.Value.Int 3) ]
  in
  let run ~domains ~use_tid_cache mode =
    with_domains domains (fun () ->
        match System.query ~mode ~use_tid_cache owner q with
        | Ok (ans, _) -> H.bag ans
        | Error e -> Alcotest.fail ("query failed: " ^ e))
  in
  List.iter
    (fun mode ->
      let want = run ~domains:1 ~use_tid_cache:false mode in
      List.iter
        (fun (domains, use_tid_cache) ->
          Alcotest.(check (list string))
            (Printf.sprintf "identical bag (domains=%d cache=%b)" domains
               use_tid_cache)
            want
            (run ~domains ~use_tid_cache mode))
        [ (1, true); (4, false); (4, true) ])
    [ `Sort_merge; `Oram ];
  (* The cache actually engaged: the cached runs above must have hit. *)
  H.check_bool "cache registered hits" true (Metrics.value m_hits > 0)

let suite =
  [ test_sort_ints_matches_list_sort;
    test_sort_ints_counter_matches_generic;
    Alcotest.test_case "sort_ints fixed cases" `Quick test_sort_ints_fixed;
    Alcotest.test_case "sort_ints counter closed form" `Quick
      test_sort_ints_counter_at_pow2;
    Alcotest.test_case "next_pow2 edges" `Quick test_next_pow2_edges;
    Alcotest.test_case "comparator_count edges" `Quick test_comparator_count_edges;
    test_packed_roundtrip;
    test_packed_order;
    Alcotest.test_case "packed bounds" `Quick test_packed_bounds;
    Alcotest.test_case "tid cache hits and misses" `Quick test_tid_cache_hits_and_misses;
    Alcotest.test_case "tid cache epoch invalidation" `Quick
      test_tid_cache_epoch_invalidation;
    Alcotest.test_case "tid cache re-encrypt invalidation" `Quick
      test_tid_cache_reencrypt_invalidation;
    Alcotest.test_case "tid cache physical identity" `Quick
      test_tid_cache_physical_identity;
    Alcotest.test_case "k-way = cascade (all true)" `Quick
      test_kway_matches_cascade_all_true;
    test_kway_matches_cascade_random_masks;
    Alcotest.test_case "k-way stats: single pass" `Quick test_kway_stats_single_pass;
    Alcotest.test_case "query: cache and domains invisible" `Quick
      test_query_cache_and_domains_invisible ]

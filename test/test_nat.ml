open Snf_bignum

let nat = Alcotest.testable Nat.pp Nat.equal

let of_i = Nat.of_int

let t name f = Alcotest.test_case name `Quick f

let test_conversions () =
  Alcotest.check nat "of_int 0" Nat.zero (of_i 0);
  Alcotest.(check string) "to_string" "123456789" (Nat.to_string (of_i 123456789));
  Alcotest.check nat "of_string" (of_i 98765) (Nat.of_string "98765");
  Alcotest.(check (option int)) "roundtrip int" (Some 424242) (Nat.to_int_opt (of_i 424242));
  let big = Nat.of_string "123456789012345678901234567890" in
  Alcotest.(check string) "big decimal roundtrip" "123456789012345678901234567890"
    (Nat.to_string big);
  Alcotest.(check (option int)) "big overflows int" None (Nat.to_int_opt big)

let test_bytes () =
  let n = Nat.of_string "1311768467463790320" (* 0x1234567890abcdf0 *) in
  let b = Nat.to_bytes_be n in
  Alcotest.check nat "bytes roundtrip" n (Nat.of_bytes_be b);
  Alcotest.check nat "leading zeros ignored" n (Nat.of_bytes_be ("\x00\x00" ^ b));
  Alcotest.(check string) "zero is empty" "" (Nat.to_bytes_be Nat.zero)

let test_arithmetic () =
  let a = Nat.of_string "999999999999999999999999" in
  let b = Nat.of_string "1000000000000000000000001" in
  Alcotest.(check string) "add" "2000000000000000000000000" (Nat.to_string (Nat.add a b));
  Alcotest.(check string) "sub" "2" (Nat.to_string (Nat.sub b a));
  Alcotest.(check string) "mul"
    "999999999999999999999999999999999999999999999999"
    (Nat.to_string (Nat.mul a b));
  Alcotest.check_raises "sub negative" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub a b))

let test_divmod () =
  let a = Nat.of_string "123456789012345678901234567890" in
  let b = Nat.of_string "987654321" in
  let q, r = Nat.divmod a b in
  Alcotest.check nat "a = q*b + r" a (Nat.add (Nat.mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod a Nat.zero))

let test_shifts () =
  let a = of_i 12345 in
  Alcotest.check nat "shl/shr" a (Nat.shift_right (Nat.shift_left a 53) 53);
  Alcotest.check nat "shl = mul 2^k" (Nat.mul a (of_i 1024)) (Nat.shift_left a 10);
  Alcotest.(check int) "bit_length 0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "bit_length 255" 8 (Nat.bit_length (of_i 255));
  Alcotest.(check int) "bit_length 256" 9 (Nat.bit_length (of_i 256))

let test_modular () =
  let m = of_i 1000003 in
  let a = of_i 123456 in
  Alcotest.check nat "pow_mod small" (of_i 1)
    (Nat.pow_mod a (Nat.pred m) m) (* Fermat: m prime *);
  (match Nat.mod_inverse a m with
   | Some inv -> Alcotest.check nat "inverse" (of_i 1) (Nat.mul_mod a inv m)
   | None -> Alcotest.fail "inverse should exist");
  Alcotest.(check bool) "non-invertible" true
    (Nat.mod_inverse (of_i 6) (of_i 12) = None);
  Alcotest.check nat "gcd" (of_i 6) (Nat.gcd (of_i 54) (of_i 24));
  Alcotest.check nat "lcm" (of_i 216) (Nat.lcm (of_i 54) (of_i 24))

let test_primality () =
  let prng = Snf_crypto.Prng.create 11 in
  let rand b = Snf_crypto.Prng.int prng b in
  Alcotest.(check bool) "1e6+3 prime" true (Nat.is_probable_prime rand (of_i 1000003));
  Alcotest.(check bool) "carmichael 561" false (Nat.is_probable_prime rand (of_i 561));
  Alcotest.(check bool) "carmichael 6601" false (Nat.is_probable_prime rand (of_i 6601));
  Alcotest.(check bool) "even" false (Nat.is_probable_prime rand (of_i 1000004));
  Alcotest.(check bool) "small primes" true
    (List.for_all (fun p -> Nat.is_probable_prime rand (of_i p)) [ 2; 3; 5; 7; 11; 13 ]);
  let p = Nat.random_prime rand 40 in
  Alcotest.(check int) "prime bit length" 40 (Nat.bit_length p);
  Alcotest.(check bool) "is prime" true (Nat.is_probable_prime rand p)

(* --- properties ---------------------------------------------------------- *)

let gen_small = QCheck2.Gen.(map abs int)

let prop_add_comm =
  Helpers.qtest "add commutative" QCheck2.Gen.(pair gen_small gen_small) (fun (a, b) ->
      Nat.equal (Nat.add (of_i a) (of_i b)) (Nat.add (of_i b) (of_i a)))

let prop_mul_distributes =
  Helpers.qtest "mul distributes over add"
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b, c) ->
      Nat.equal
        (Nat.mul (of_i a) (Nat.add (of_i b) (of_i c)))
        (Nat.add (Nat.mul (of_i a) (of_i b)) (Nat.mul (of_i a) (of_i c))))

let prop_divmod =
  Helpers.qtest "divmod invariant"
    QCheck2.Gen.(pair gen_small (int_range 1 max_int))
    (fun (a, b) ->
      let q, r = Nat.divmod (of_i a) (of_i b) in
      Nat.equal (of_i a) (Nat.add (Nat.mul q (of_i b)) r) && Nat.compare r (of_i b) < 0)

let prop_string_roundtrip =
  Helpers.qtest "decimal roundtrip" gen_small (fun a ->
      Nat.equal (of_i a) (Nat.of_string (Nat.to_string (of_i a))))

let prop_pow_mod =
  Helpers.qtest "pow_mod agrees with repeated mul"
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 12) (int_range 2 10_000))
    (fun (b, e, m) ->
      let expected = ref Nat.one in
      for _ = 1 to e do
        expected := Nat.mul_mod !expected (of_i b) (of_i m)
      done;
      Nat.equal !expected (Nat.pow_mod (of_i b) (of_i e) (of_i m)))

(* Multi-limb stress for Algorithm D, including near-boundary divisors that
   exercise the qhat-correction and add-back paths. *)
let big_gen =
  QCheck2.Gen.(
    let bytes n = map (fun l -> Nat.of_bytes_be (String.init (List.length l) (List.nth l))) (list_size (return n) (map Char.chr (int_bound 255))) in
    let* na = int_range 1 30 in
    let* nb = int_range 1 20 in
    pair (bytes na) (bytes nb))

let prop_divmod_big =
  Helpers.qtest ~count:500 "knuth divmod invariant on multi-limb inputs" big_gen
    (fun (a, b) ->
      if Nat.is_zero b then true
      else begin
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0
      end)

let prop_divmod_adversarial =
  (* Divisors of the form base^k - small force maximal qhat corrections. *)
  Helpers.qtest ~count:300 "divmod near power-of-base boundaries"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 64) (int_range 0 5))
    (fun (k, small, extra) ->
      let base_pow = Nat.shift_left Nat.one (26 * k) in
      let b = Nat.sub base_pow (Nat.of_int small) in
      let a = Nat.add (Nat.mul b (Nat.of_int (1000 + extra))) (Nat.of_int extra) in
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r)
      && Nat.compare r b < 0
      && Nat.equal q (Nat.of_int (1000 + extra))
      && Nat.equal r (Nat.of_int extra))

let prop_mod_inverse =
  Helpers.qtest "mod_inverse correct when defined"
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 2 100_000))
    (fun (a, m) ->
      match Nat.mod_inverse (of_i a) (of_i m) with
      | Some inv -> Nat.equal Nat.one (Nat.mul_mod (of_i a) inv (of_i m))
      | None -> not (Nat.is_one (Nat.gcd (of_i a) (of_i m))) || of_i m = Nat.one)

(* --- Montgomery kernel ---------------------------------------------------- *)

let bytes_gen lo hi =
  QCheck2.Gen.(
    let* n = int_range lo hi in
    map
      (fun l -> Nat.of_bytes_be (String.init (List.length l) (List.nth l)))
      (list_size (return n) (map Char.chr (int_bound 255))))

(* Random odd moduli > 1, one to many limbs. *)
let odd_modulus_gen =
  QCheck2.Gen.map
    (fun m ->
      let m = if Nat.compare m (of_i 3) < 0 then of_i 3 else m in
      if Nat.is_even m then Nat.succ m else m)
    (bytes_gen 1 24)

let prop_mont_mul_mod =
  Helpers.qtest ~count:400 "Mont.mul_mod agrees with Nat.mul_mod"
    QCheck2.Gen.(triple odd_modulus_gen (bytes_gen 0 24) (bytes_gen 0 24))
    (fun (m, a0, b0) ->
      let ctx = Nat.Mont.make m in
      let a = Nat.rem a0 m and b = Nat.rem b0 m in
      Nat.equal (Nat.Mont.mul_mod ctx a b) (Nat.mul_mod a b m))

let prop_mont_pow_mod =
  Helpers.qtest ~count:300 "Mont.pow_mod agrees with Nat.pow_mod"
    QCheck2.Gen.(triple odd_modulus_gen (bytes_gen 0 24) (bytes_gen 0 12))
    (fun (m, b0, e) ->
      let ctx = Nat.Mont.make m in
      let b = Nat.rem b0 m in
      Nat.equal (Nat.Mont.pow_mod ctx b e) (Nat.pow_mod b e m))

let prop_mont_roundtrip =
  Helpers.qtest ~count:300 "to_mont/of_mont roundtrip"
    QCheck2.Gen.(pair odd_modulus_gen (bytes_gen 0 24))
    (fun (m, a0) ->
      let ctx = Nat.Mont.make m in
      let a = Nat.rem a0 m in
      Nat.equal a (Nat.Mont.of_mont ctx (Nat.Mont.to_mont ctx a)))

let test_mont_edges () =
  let msg = "Nat.Mont.make: modulus must be odd and > 1" in
  Alcotest.check_raises "even modulus rejected" (Invalid_argument msg) (fun () ->
      ignore (Nat.Mont.make (of_i 100)));
  Alcotest.check_raises "modulus 1 rejected" (Invalid_argument msg) (fun () ->
      ignore (Nat.Mont.make Nat.one));
  Alcotest.check_raises "modulus 0 rejected" (Invalid_argument msg) (fun () ->
      ignore (Nat.Mont.make Nat.zero));
  let ctx = Nat.Mont.make (of_i 1000003) in
  Alcotest.check nat "x^0 = 1" Nat.one (Nat.Mont.pow_mod ctx (of_i 42) Nat.zero);
  Alcotest.check nat "0^e = 0" Nat.zero (Nat.Mont.pow_mod ctx Nat.zero (of_i 17));
  Alcotest.check nat "0^0 = 1" Nat.one (Nat.Mont.pow_mod ctx Nat.zero Nat.zero);
  Alcotest.check nat "Fermat via Mont" Nat.one
    (Nat.Mont.pow_mod ctx (of_i 123456) (of_i 1000002));
  (* huge exponent exercises the widest sliding window *)
  let m = Nat.pred (Nat.shift_left Nat.one 130) in
  let m = if Nat.is_even m then Nat.succ m else m in
  let ctx = Nat.Mont.make m in
  let e = Nat.of_string "123456789012345678901234567890123456789" in
  let b = of_i 987654321 in
  Alcotest.check nat "multi-limb exponent" (Nat.pow_mod b e m)
    (Nat.Mont.pow_mod ctx b e)

let suite =
  [ t "conversions" test_conversions;
    t "montgomery edges" test_mont_edges;
    prop_mont_mul_mod;
    prop_mont_pow_mod;
    prop_mont_roundtrip;
    t "bytes" test_bytes;
    t "arithmetic" test_arithmetic;
    t "divmod" test_divmod;
    t "shifts" test_shifts;
    t "modular" test_modular;
    t "primality" test_primality;
    prop_add_comm;
    prop_mul_distributes;
    prop_divmod;
    prop_divmod_big;
    prop_divmod_adversarial;
    prop_string_roundtrip;
    prop_pow_mod;
    prop_mod_inverse ]

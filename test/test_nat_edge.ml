(* Edge cases of the bignum kernels: zero operands, operand aliasing,
   degenerate moduli, exponent zero, and the Montgomery kernels against
   the plain reference implementations. *)

open Helpers
module Nat = Snf_bignum.Nat

let n = Nat.of_int

let check_nat msg want got =
  check_string msg (Nat.to_string want) (Nat.to_string got)

let zero_operands () =
  check_nat "0 + x" (n 41) (Nat.add Nat.zero (n 41));
  check_nat "x + 0" (n 41) (Nat.add (n 41) Nat.zero);
  check_nat "x - 0" (n 41) (Nat.sub (n 41) Nat.zero);
  check_nat "x - x" Nat.zero (Nat.sub (n 41) (n 41));
  check_nat "0 * x" Nat.zero (Nat.mul Nat.zero (n 41));
  check_nat "x * 0" Nat.zero (Nat.mul (n 41) Nat.zero);
  check_nat "0 / x" Nat.zero (Nat.div Nat.zero (n 41));
  check_nat "0 mod x" Nat.zero (Nat.rem Nat.zero (n 41));
  check_bool "is_zero zero" true (Nat.is_zero Nat.zero);
  check_bool "0 is even" true (Nat.is_even Nat.zero);
  check_int "bit_length zero" 0 (Nat.bit_length Nat.zero)

let aliasing () =
  (* The same physical value on both sides of every binary kernel. *)
  let x = n 123456789 in
  check_nat "x + x" (n 246913578) (Nat.add x x);
  check_nat "x * x" (Nat.mul (n 123456789) (n 123456789)) (Nat.mul x x);
  check_nat "x - x aliased" Nat.zero (Nat.sub x x);
  let q, r = Nat.divmod x x in
  check_nat "x / x" Nat.one q;
  check_nat "x mod x" Nat.zero r;
  check_nat "gcd x x" x (Nat.gcd x x);
  let m = n 1000003 in
  check_nat "mul_mod aliased" (Nat.rem (Nat.mul x x) m) (Nat.mul_mod x x m);
  check_nat "pow_mod aliased base=exp"
    (Nat.pow_mod (n 7) (n 7) m)
    (Nat.pow_mod (n 7) (n 7) m)

let modulus_one () =
  (* Everything is congruent to zero mod 1, including b^0. *)
  check_nat "add_mod _ _ 1" Nat.zero (Nat.add_mod (n 5) (n 9) Nat.one);
  check_nat "mul_mod _ _ 1" Nat.zero (Nat.mul_mod (n 5) (n 9) Nat.one);
  check_nat "pow_mod b e 1" Nat.zero (Nat.pow_mod (n 5) (n 9) Nat.one);
  check_nat "pow_mod b 0 1" Nat.zero (Nat.pow_mod (n 5) Nat.zero Nat.one)

let exponent_zero () =
  let m = n 97 in
  check_nat "b^0 = 1" Nat.one (Nat.pow_mod (n 13) Nat.zero m);
  check_nat "0^0 = 1 (convention)" Nat.one (Nat.pow_mod Nat.zero Nat.zero m);
  check_nat "0^e = 0" Nat.zero (Nat.pow_mod Nat.zero (n 12) m);
  let ctx = Nat.Mont.make m in
  check_nat "Mont b^0 = 1" Nat.one (Nat.Mont.pow_mod ctx (n 13) Nat.zero);
  check_nat "Mont 0^0 = 1" Nat.one (Nat.Mont.pow_mod ctx Nat.zero Nat.zero)

let mont_rejects_bad_moduli () =
  let rejects m =
    match Nat.Mont.make m with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "even modulus rejected" true (rejects (n 10));
  check_bool "zero modulus rejected" true (rejects Nat.zero);
  check_bool "unit modulus rejected" true (rejects Nat.one)

(* Deterministic pseudo-random big naturals for the cross-checks. *)
let nat_pair_gen =
  let open QCheck2.Gen in
  let* seed = 0 -- 0xFFFFF in
  let prng = Snf_crypto.Prng.create seed in
  let rand_nat bits = Nat.random_bits (fun n -> Snf_crypto.Prng.int prng n) bits in
  let* mbits = 8 -- 160 in
  let m =
    let m = rand_nat mbits in
    let m = if Nat.is_even m then Nat.succ m else m in
    if Nat.compare m Nat.two < 0 then Nat.of_int 3 else m
  in
  let+ abits = 1 -- 200 in
  (m, rand_nat abits, rand_nat 64)

let mont_vs_reference =
  qtest ~count:150 "Mont.{mul_mod,pow_mod,to/of_mont} agree with plain kernels"
    nat_pair_gen (fun (m, a, e) ->
      let ctx = Nat.Mont.make m in
      Nat.equal (Nat.Mont.mul_mod ctx a e) (Nat.mul_mod a e m)
      && Nat.equal (Nat.Mont.pow_mod ctx a e) (Nat.pow_mod a e m)
      && Nat.equal (Nat.Mont.of_mont ctx (Nat.Mont.to_mont ctx a)) (Nat.rem a m)
      &&
      let am = Nat.Mont.to_mont ctx a and em = Nat.Mont.to_mont ctx e in
      Nat.equal (Nat.Mont.of_mont ctx (Nat.Mont.mul ctx am em)) (Nat.mul_mod a e m))

let bytes_roundtrip () =
  check_nat "of_bytes_be/to_bytes_be" (n 0xdead)
    (Nat.of_bytes_be (Nat.to_bytes_be (n 0xdead)));
  check_nat "leading zero bytes ignored" (n 7) (Nat.of_bytes_be "\x00\x00\x07");
  check_nat "empty bytes = zero" Nat.zero (Nat.of_bytes_be "")

let suite =
  [ Alcotest.test_case "zero operands" `Quick zero_operands;
    Alcotest.test_case "operand aliasing" `Quick aliasing;
    Alcotest.test_case "modulus one" `Quick modulus_one;
    Alcotest.test_case "exponent zero" `Quick exponent_zero;
    Alcotest.test_case "Mont rejects bad moduli" `Quick mont_rejects_bad_moduli;
    mont_vs_reference;
    Alcotest.test_case "big-endian bytes round-trip" `Quick bytes_roundtrip ]

(* The networked SNF server, end to end: answers and wire accounting
   over a real socket must be indistinguishable from an in-process
   backend, under concurrency, overload, idle reaping, garbage frames,
   severed connections and graceful drain. *)

open Helpers
open Snf_relational
open Snf_exec
module Server = Snf_net.Server
module Client = Snf_net.Client
module Fault = Snf_check.Fault
module Oracle = Snf_check.Oracle
module Query = Snf_exec.Query
module Metrics = Snf_obs.Metrics

(* A fresh Unix-domain address nothing is listening on yet. *)
let fresh_addr tag =
  let path = Filename.temp_file ("snfnet_" ^ tag) ".sock" in
  Sys.remove path;
  "unix:" ^ path

let small_config ?(domains = 2) ?(queue = 64) ?(idle = 30.) () =
  { Server.default_config with
    Server.domains; queue_capacity = queue; idle_timeout = idle }

let with_mem_server ?config tag f =
  let addr = fresh_addr tag in
  let config = match config with Some c -> c | None -> small_config () in
  match Server.start_mem ~config ~addr () with
  | Error e -> Alcotest.failf "cannot start server on %s: %s" addr e
  | Ok srv -> Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv addr)

(* The same client key material [System.outsource ~name] derives, so a
   per-thread client decrypts what the shared owner installed. *)
let client_for name =
  Enc_relation.make_client ~seed:0x5eed ~relation_name:name ~master:("master:" ^ name)
    ()

(* --- basic round trip: socket owner vs oracle, exact wire parity ---------- *)

let queries =
  [ Query.point ~select:[ "State"; "Income" ] [ ("ZipCode", Value.Int 94016) ];
    { Query.select = [ "State"; "ZipCode" ]; where = [] };
    { Query.select = [ "Income" ];
      where = [ Query.Range ("Income", Value.Int 60, Value.Int 100) ] } ]

let test_round_trip_matches_mem () =
  with_mem_server "rt" @@ fun _srv addr ->
  let r = example1_relation () and policy = example1_policy () in
  let sock_owner =
    System.outsource ~backend:(`Ext (Client.backend addr)) ~name:"nrt" r policy
  in
  let mem_owner = System.outsource ~name:"nrt" r policy in
  Fun.protect
    ~finally:(fun () ->
      System.release sock_owner;
      System.release mem_owner)
  @@ fun () ->
  check_string "backend name" "socket"
    (System.backend_kind_name (System.backend sock_owner));
  List.iter
    (fun q ->
      match (System.query sock_owner q, System.query mem_owner q) with
      | Ok (sa, st), Ok (ma, mt) ->
        check_same_bag "socket bag = mem bag" ma sa;
        check_same_bag "socket bag = oracle" (Oracle.answer r q) sa;
        (* framing is transport bookkeeping, not protocol traffic: the
           SNFM byte accounting must be identical *)
        check_int "wire requests" mt.Executor.wire_requests st.Executor.wire_requests;
        check_int "wire bytes up" mt.Executor.wire_bytes_up st.Executor.wire_bytes_up;
        check_int "wire bytes down" mt.Executor.wire_bytes_down
          st.Executor.wire_bytes_down
      | Error e, _ | _, Error e -> Alcotest.failf "query failed: %s" e)
    queries;
  check_bool "verify over the socket" true (System.verify sock_owner (List.hd queries))

(* The tid-decrypt cache contract survives the transport: while the
   server's tid bytes are unchanged, [fetch_tids] returns the {e same
   physical array} on a persistent connection. *)
let test_tid_memo_stable_over_socket () =
  with_mem_server "tid" @@ fun _srv addr ->
  let r = example1_relation () and policy = example1_policy () in
  let owner =
    System.outsource ~backend:(`Ext (Client.backend addr)) ~name:"ntid" r policy
  in
  Fun.protect ~finally:(fun () -> System.release owner) @@ fun () ->
  match Client.connect addr with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Server_api.close conn) @@ fun () ->
    let _, leaves = Server_api.describe conn in
    let leaf, _ = List.hd leaves in
    let a = Server_api.fetch_tids conn ~leaf in
    let b = Server_api.fetch_tids conn ~leaf in
    check_bool "physically the same array" true (a == b)

(* --- concurrency battery --------------------------------------------------- *)

let wire_counters () =
  ( Metrics.value (Metrics.counter "exec.wire.requests"),
    Metrics.value (Metrics.counter "exec.wire.bytes_up"),
    Metrics.value (Metrics.counter "exec.wire.bytes_down") )

let concurrent_battery ~server_domains () =
  let config = small_config ~domains:server_domains () in
  with_mem_server ~config "conc" @@ fun srv addr ->
  let r = example1_relation () and policy = example1_policy () in
  let name = Printf.sprintf "nc%d" server_domains in
  let owner =
    System.outsource ~backend:(`Ext (Client.backend addr)) ~name r policy
  in
  Fun.protect ~finally:(fun () -> System.release owner) @@ fun () ->
  let rep = owner.System.plan.Snf_core.Normalizer.representation in
  let oracle_bags = List.map (fun q -> bag (Oracle.answer r q)) queries in
  let n_threads = 8 in
  let failures = Atomic.make 0 in
  let noted = Mutex.create () in
  let notes = ref [] in
  let fail_note msg =
    Atomic.incr failures;
    Mutex.protect noted (fun () -> notes := msg :: !notes)
  in
  let stats = Array.make n_threads { Server_api.requests = 0; bytes_up = 0; bytes_down = 0 } in
  let req0, up0, down0 = wire_counters () in
  let worker i () =
    let client = client_for name in
    match Client.connect addr with
    | Error e -> fail_note (Printf.sprintf "thread %d: connect: %s" i e)
    | Ok conn ->
      Fun.protect ~finally:(fun () -> Server_api.close conn) @@ fun () ->
      (* M sequential queries, then the same workload as one batch *)
      for _round = 1 to 2 do
        List.iteri
          (fun j q ->
            match Executor.run_conn client conn rep q with
            | Ok (ans, _) ->
              if bag ans <> List.nth oracle_bags j then
                fail_note (Printf.sprintf "thread %d query %d: wrong bag" i j)
            | Error e -> fail_note (Printf.sprintf "thread %d query %d: %s" i j e))
          queries
      done;
      List.iteri
        (fun j result ->
          match result with
          | Ok (ans, _) ->
            if bag ans <> List.nth oracle_bags j then
              fail_note (Printf.sprintf "thread %d batch %d: wrong bag" i j)
          | Error e -> fail_note (Printf.sprintf "thread %d batch %d: %s" i j e))
        (Executor.run_batch client conn rep queries);
      stats.(i) <- Server_api.stats conn
  in
  let threads = List.init n_threads (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  (match !notes with [] -> () | msgs -> Alcotest.fail (String.concat "; " msgs));
  check_int "no thread failed" 0 (Atomic.get failures);
  (* Per-session accounting must reconcile exactly with the global
     exec.wire.* movement: nothing lost, nothing double-counted. *)
  let req1, up1, down1 = wire_counters () in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  check_int "summed session requests = global delta" (req1 - req0)
    (sum (fun s -> s.Server_api.requests));
  check_int "summed session bytes up = global delta" (up1 - up0)
    (sum (fun s -> s.Server_api.bytes_up));
  check_int "summed session bytes down = global delta" (down1 - down0)
    (sum (fun s -> s.Server_api.bytes_down));
  let sstats = Server.stats srv in
  check_bool "server saw every session" true
    (sstats.Server.sessions_opened >= n_threads);
  check_bool "server served every request" true
    (sstats.Server.requests_served >= sum (fun s -> s.Server_api.requests))

let test_concurrent_one_domain () = concurrent_battery ~server_domains:1 ()
let test_concurrent_four_domains () = concurrent_battery ~server_domains:4 ()

(* --- backpressure: overload degrades into typed rejections ---------------- *)

(* A memory backend whose describe dawdles, so one worker + a one-deep
   queue saturate under a burst. *)
module Slow_mem = struct
  type t = Backend_mem.t

  let name = "slow-mem"

  let view b =
    let v = Backend_mem.view b in
    { v with
      Server_api.describe =
        (fun () ->
          Unix.sleepf 0.15;
          v.Server_api.describe ()) }

  let close = Backend_mem.close
end

let test_backpressure_busy_then_complete () =
  let addr = fresh_addr "busy" in
  let r = example1_relation () and policy = example1_policy () in
  let mem_owner = System.outsource ~name:"nbp" r policy in
  let enc = mem_owner.System.enc in
  System.release mem_owner;
  let config = small_config ~domains:1 ~queue:1 () in
  match Server.start ~config ~addr (module Slow_mem) (Backend_mem.of_store enc) with
  | Error e -> Alcotest.failf "cannot start slow server: %s" e
  | Ok srv ->
    Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
    let n = 6 in
    let go = Atomic.make false in
    let busy = Atomic.make 0 and completed = Atomic.make 0 in
    let errors = Atomic.make 0 in
    let worker _i () =
      match Client.connect addr with
      | Error _ -> Atomic.incr errors
      | Ok conn ->
        Fun.protect ~finally:(fun () -> Server_api.close conn) @@ fun () ->
        while not (Atomic.get go) do
          Thread.yield ()
        done;
        let rec attempt retries =
          if retries > 200 then Atomic.incr errors
          else
            match Server_api.describe conn with
            | _ -> Atomic.incr completed
            | exception Server_api.Busy ->
              (* the typed, retryable rejection — never executed, never
                 hung; back off and go again *)
              Atomic.incr busy;
              Unix.sleepf 0.05;
              attempt (retries + 1)
            | exception e ->
              ignore e;
              Atomic.incr errors
        in
        attempt 0
    in
    let threads = List.init n (fun i -> Thread.create (worker i) ()) in
    Atomic.set go true;
    List.iter Thread.join threads;
    check_int "no hard errors" 0 (Atomic.get errors);
    check_int "every request eventually completed" n (Atomic.get completed);
    check_bool "the burst drew at least one busy rejection" true
      (Atomic.get busy >= 1);
    let st = Server.stats srv in
    check_int "server counted exactly the rejections clients saw"
      (Atomic.get busy) st.Server.busy_rejections;
    check_int "server served exactly the completions" n st.Server.requests_served

(* --- session hygiene ------------------------------------------------------- *)

let test_idle_sessions_reaped () =
  let config = small_config ~idle:0.2 () in
  with_mem_server ~config "idle" @@ fun srv addr ->
  match Client.connect addr with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok conn ->
    (* park a session and let it go stale *)
    Unix.sleepf 0.1;  (* let the accept loop register it *)
    check_int "one active session" 1 (Server.stats srv).Server.sessions_active;
    Unix.sleepf 0.7;
    check_int "idle session reaped" 0 (Server.stats srv).Server.sessions_active;
    (match Server_api.describe conn with
     | _ -> Alcotest.fail "a reaped session must not answer"
     | exception Client.Disconnected _ -> ()
     | exception e ->
       Alcotest.failf "expected Disconnected, got %s" (Printexc.to_string e));
    (* the server itself is fine — fresh sessions serve *)
    (match Client.connect addr with
     | Error e -> Alcotest.failf "reconnect: %s" e
     | Ok conn2 ->
       Fun.protect ~finally:(fun () -> Server_api.close conn2) @@ fun () ->
       check_bool "fresh session alive" true
         (match Server_api.check_shape conn2 with
          | () -> true
          | exception Invalid_argument _ -> true))

let test_garbage_frames_reap_only_that_session () =
  with_mem_server "junk" @@ fun srv addr ->
  (match Client.open_handle addr with
   | Error e -> Alcotest.failf "dial: %s" e
   | Ok h ->
     Client.raw_send h "JUNKJUNKJUNKJUNK";
     (* the server drops the stream at the bad magic *)
     let deadline = Unix.gettimeofday () +. 2. in
     let rec wait () =
       if (Server.stats srv).Server.frame_errors >= 1 then ()
       else if Unix.gettimeofday () > deadline then
         Alcotest.fail "server never counted the frame error"
       else (
         Thread.yield ();
         Unix.sleepf 0.02;
         wait ())
     in
     wait ();
     Client.kill h);
  check_int "exactly one frame error" 1 (Server.stats srv).Server.frame_errors;
  (* everyone else is unaffected *)
  match Client.connect addr with
  | Error e -> Alcotest.failf "reconnect after garbage: %s" e
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Server_api.close conn) @@ fun () ->
    check_bool "server still serves" true
      (match Server_api.check_shape conn with
       | () -> true
       | exception Invalid_argument _ -> true)

let test_graceful_drain_completes_in_flight () =
  let addr = fresh_addr "drain" in
  let r = example1_relation () and policy = example1_policy () in
  let mem_owner = System.outsource ~name:"ndr" r policy in
  let enc = mem_owner.System.enc in
  System.release mem_owner;
  let config = small_config ~domains:1 () in
  match Server.start ~config ~addr (module Slow_mem) (Backend_mem.of_store enc) with
  | Error e -> Alcotest.failf "cannot start slow server: %s" e
  | Ok srv ->
    let got = ref None in
    (match Client.connect addr with
     | Error e -> Alcotest.failf "connect: %s" e
     | Ok conn ->
       let t =
         Thread.create
           (fun () ->
             got :=
               Some
                 (match Server_api.describe conn with
                  | _ -> `Answered
                  | exception e -> `Raised (Printexc.to_string e)))
           ()
       in
       Unix.sleepf 0.05;  (* let the request reach the worker *)
       Server.stop srv;   (* drain: the in-flight describe must finish *)
       Thread.join t;
       Server_api.close conn);
    (match !got with
     | Some `Answered -> ()
     | Some (`Raised e) -> Alcotest.failf "in-flight request lost to drain: %s" e
     | None -> Alcotest.fail "client thread never finished");
    Server.stop srv;  (* idempotent *)
    check_bool "socket path unlinked" false
      (Sys.file_exists (String.sub addr 5 (String.length addr - 5)))

(* --- connection fault campaign -------------------------------------------- *)

let test_connection_fault_campaign () =
  with_mem_server "fault" @@ fun _srv addr ->
  let inst = Snf_check.Gen.instance { Snf_check.Gen.seed = 23; rows = 8; clusters = [ 2; 2 ]; singles = 4 } in
  let outcomes = Fault.conn_campaign ~addr inst in
  check_int "all four scenarios ran" 4 (List.length outcomes);
  List.iter
    (fun (o : Fault.conn_outcome) ->
      if not (o.Fault.typed && o.Fault.server_alive && o.Fault.recovered) then
        Alcotest.failf "%s: %s" (Fault.conn_fault_name o.Fault.conn_kind)
          o.Fault.conn_detail)
    outcomes

(* --- differential: the socket twin ---------------------------------------- *)

let test_differential_socket_twin () =
  let spec = { Snf_check.Gen.seed = 11; rows = 12; clusters = [ 3 ]; singles = 3 } in
  let outcome =
    Snf_check.Differential.run_spec ~queries:6 ~backend:`Socket spec
  in
  (match outcome.Snf_check.Differential.failures with
   | [] -> ()
   | fs ->
     Alcotest.fail
       (String.concat "; " (List.map Snf_check.Differential.failure_to_string fs)));
  check_bool "queries actually ran" true (outcome.Snf_check.Differential.queries_run >= 6)

let suite =
  [ Alcotest.test_case "socket round trip: bags and exact wire parity" `Quick
      test_round_trip_matches_mem;
    Alcotest.test_case "tid memo physically stable over the socket" `Quick
      test_tid_memo_stable_over_socket;
    Alcotest.test_case "8 threads x 1-domain server: bags and accounting" `Quick
      test_concurrent_one_domain;
    Alcotest.test_case "8 threads x 4-domain server: bags and accounting" `Quick
      test_concurrent_four_domains;
    Alcotest.test_case "overload: typed busy, then full completion" `Quick
      test_backpressure_busy_then_complete;
    Alcotest.test_case "idle sessions reaped, server keeps serving" `Quick
      test_idle_sessions_reaped;
    Alcotest.test_case "garbage frames reap only that session" `Quick
      test_garbage_frames_reap_only_that_session;
    Alcotest.test_case "graceful drain completes in-flight work" `Quick
      test_graceful_drain_completes_in_flight;
    Alcotest.test_case "connection fault campaign" `Quick
      test_connection_fault_campaign;
    Alcotest.test_case "differential socket twin" `Quick
      test_differential_socket_twin ]

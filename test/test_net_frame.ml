(* SNFF framing under fire: QCheck fuzz over the frame codec and the
   incremental Reader. The conformance contract: any byte stream — split
   arbitrarily, truncated, bit-flipped, or pure garbage — yields either
   the original payloads or a typed [Frame.error], never a crash, a
   giant allocation, or a wedged reader. *)

open Helpers
module Frame = Snf_net.Frame
module Addr = Snf_net.Addr
module Gen = QCheck2.Gen

let payload_gen = Gen.(string_size ~gen:char (int_bound 600))

(* Drain every completed frame the reader has. *)
let drain reader =
  let rec go acc =
    match Frame.Reader.next reader with
    | Ok (Some p) -> go (p :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error e -> Error (e, List.rev acc)
  in
  go []

(* Cut [s] into chunks at pseudo-random boundaries drawn from [cuts]. *)
let chunk_at cuts s =
  let n = String.length s in
  let cuts = List.sort_uniq compare (List.filter (fun i -> i > 0 && i < n) cuts) in
  let rec go start = function
    | [] -> if start < n then [ String.sub s start (n - start) ] else []
    | c :: rest -> String.sub s start (c - start) :: go c rest
  in
  if n = 0 then [] else go 0 cuts

(* --- round trips over arbitrary chunking --------------------------------- *)

let frame_roundtrip_chunked =
  qtest "frames survive any chunk boundaries"
    Gen.(pair (list_size (int_bound 5) payload_gen) (list (int_bound 4096)))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map Frame.encode payloads) in
      let reader = Frame.Reader.create () in
      List.iter (Frame.Reader.feed reader) (chunk_at cuts stream);
      drain reader = Ok payloads)

let frame_roundtrip_drip =
  qtest ~count:60 "frames survive a 1-byte drip"
    Gen.(list_size (int_bound 3) payload_gen)
    (fun payloads ->
      let stream = String.concat "" (List.map Frame.encode payloads) in
      let reader = Frame.Reader.create () in
      String.iter (fun c -> Frame.Reader.feed reader (String.make 1 c)) stream;
      drain reader = Ok payloads)

let decode_roundtrip =
  qtest "decode inverts encode" payload_gen (fun p ->
      Frame.decode (Frame.encode p) = Ok p)

(* --- truncation ----------------------------------------------------------- *)

let strict_prefixes_truncated =
  qtest ~count:40 "every strict prefix is Truncated, and the reader wants more"
    payload_gen
    (fun p ->
      let s = Frame.encode p in
      List.for_all
        (fun n ->
          let prefix = String.sub s 0 n in
          Frame.decode prefix = Error Frame.Truncated
          &&
          (* the incremental reader just waits for the rest *)
          let reader = Frame.Reader.create () in
          Frame.Reader.feed reader prefix;
          Frame.Reader.next reader = Ok None)
        (List.init (String.length s) Fun.id))

(* --- damage: typed error, never a crash ----------------------------------- *)

(* Flipping a header byte must surface a typed error (or, for the length
   field, possibly Truncated/oversized); flipping a payload byte decodes
   fine — framing doesn't authenticate, the SNFM codec inside does. *)
let header_flip_typed =
  qtest "header byte-flips yield a typed error"
    Gen.(triple payload_gen (int_bound (Frame.header_len - 1)) (int_range 1 255))
    (fun (p, pos, x) ->
      let s = Bytes.of_string (Frame.encode p) in
      Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor x));
      let s = Bytes.to_string s in
      match Frame.decode s with
      | Ok _ ->
        (* impossible: magic/version/length are all load-bearing, and the
           xor is nonzero *)
        false
      | Error (Frame.Bad_magic _) ->
        (* a magic flip directly, or a shrunk length leaving trailing
           bytes that read as a mangled second magic *)
        pos < 4 || pos >= 5
      | Error (Frame.Bad_version _) -> pos = 4
      | Error (Frame.Oversized _) | Error Frame.Truncated -> pos >= 5)

let payload_flip_is_framings_problem_not =
  qtest "payload byte-flips still frame correctly"
    Gen.(triple payload_gen (int_bound 10_000) (int_range 1 255))
    (fun (p, pos, x) ->
      QCheck2.assume (String.length p > 0);
      let s = Bytes.of_string (Frame.encode p) in
      let pos = Frame.header_len + (pos mod String.length p) in
      Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor x));
      match Frame.decode (Bytes.to_string s) with
      | Ok p' -> String.length p' = String.length p && p' <> p
      | Error _ -> false)

let garbage_never_crashes =
  qtest "garbage streams never crash the reader"
    Gen.(pair (string_size ~gen:char (int_bound 2_000)) (list (int_bound 512)))
    (fun (junk, cuts) ->
      let reader = Frame.Reader.create () in
      List.iter (Frame.Reader.feed reader) (chunk_at cuts junk);
      match drain reader with
      | Ok _ | Error _ -> true)

let reader_stays_poisoned =
  qtest ~count:60 "a failed reader keeps returning the same error"
    payload_gen
    (fun p ->
      let reader = Frame.Reader.create () in
      Frame.Reader.feed reader "JUNK!!!!!";
      match Frame.Reader.next reader with
      | Ok _ -> false
      | Error e ->
        (* fresh valid frames cannot resurrect it *)
        Frame.Reader.feed reader (Frame.encode p);
        Frame.Reader.next reader = Error e)

(* --- size cap ------------------------------------------------------------- *)

let test_oversized_rejected_before_allocation () =
  (* A header declaring a huge payload must be refused from the 9 header
     bytes alone — no allocation, no waiting for the body. *)
  let b = Bytes.of_string (Frame.encode "x") in
  Bytes.set_int32_le b 5 0x7fff_fff0l;
  let reader = Frame.Reader.create () in
  Frame.Reader.feed reader (Bytes.sub_string b 0 Frame.header_len);
  (match Frame.Reader.next reader with
   | Error (Frame.Oversized n) -> check_int "declared length" 0x7fff_fff0 n
   | other ->
     Alcotest.failf "expected Oversized, got %s"
       (match other with
        | Ok _ -> "Ok"
        | Error e -> Frame.error_to_string e));
  (* a custom cap applies the same way *)
  (match Frame.decode ~max_frame:4 (Frame.encode "12345") with
   | Error (Frame.Oversized 5) -> ()
   | _ -> Alcotest.fail "5-byte payload must be Oversized under a 4-byte cap");
  check_bool "at the cap is fine" true
    (Frame.decode ~max_frame:5 (Frame.encode "12345") = Ok "12345")

let test_empty_payload () =
  check_bool "empty payload round trips" true (Frame.decode (Frame.encode "") = Ok "");
  check_int "empty frame is just the header" Frame.header_len
    (String.length (Frame.encode ""))

let test_trailing_bytes_are_next_frame () =
  (* decode is strict: exactly one frame. Trailing bytes read as a
     mangled second magic. *)
  match Frame.decode (Frame.encode "abc" ^ "zz") with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "trailing bytes must be rejected as a bad next magic"

(* --- addresses ------------------------------------------------------------ *)

let test_addr_parse () =
  (match Addr.parse "unix:/tmp/x.sock" with
   | Ok (Addr.Unix_path "/tmp/x.sock") -> ()
   | _ -> Alcotest.fail "unix:/tmp/x.sock");
  (match Addr.parse "tcp:127.0.0.1:7070" with
   | Ok (Addr.Tcp ("127.0.0.1", 7070)) -> ()
   | _ -> Alcotest.fail "tcp:127.0.0.1:7070");
  List.iter
    (fun bad ->
      match Addr.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must not parse" bad)
    [ ""; "unix:"; "tcp:"; "tcp:host"; "tcp:host:notaport"; "tcp:host:-1";
      "tcp:host:70000"; "http://x"; "socket:unix:/x" ]

let suite =
  [ frame_roundtrip_chunked; frame_roundtrip_drip; decode_roundtrip;
    strict_prefixes_truncated; header_flip_typed;
    payload_flip_is_framings_problem_not; garbage_never_crashes;
    reader_stays_poisoned;
    Alcotest.test_case "oversized rejected from the header alone" `Quick
      test_oversized_rejected_before_allocation;
    Alcotest.test_case "empty payload" `Quick test_empty_payload;
    Alcotest.test_case "trailing bytes rejected" `Quick
      test_trailing_bytes_are_next_frame;
    Alcotest.test_case "address grammar" `Quick test_addr_parse ]

(* Snf_obs: span tracing, metrics registry, and trace export.

   Metrics are process-global and other suites bump them, so every check
   here works on deltas of counters with test-private names. Span tests
   drive the tracer with an injected deterministic clock. *)

open Snf_obs
open Snf_relational
module Scheme = Snf_crypto.Scheme

let t name f = Alcotest.test_case name `Quick f

let with_domains domains f =
  let saved = Snf_exec.Parallel.domain_count () in
  Snf_exec.Parallel.set_domain_count domains;
  Fun.protect ~finally:(fun () -> Snf_exec.Parallel.set_domain_count saved) f

(* A clock ticking one second per read, for exactly predictable spans. *)
let with_fake_clock f =
  let ticks = ref 0.0 in
  Clock.set (fun () -> ticks := !ticks +. 1.0; !ticks);
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ();
      Clock.use_real ())
    f

(* --- metrics registry ----------------------------------------------------- *)

let test_registration_idempotent () =
  let a = Metrics.counter "test.obs.idem" in
  let b = Metrics.counter "test.obs.idem" in
  let v0 = Metrics.value a in
  Metrics.incr a;
  Metrics.add b 4;
  Alcotest.(check int) "both handles hit one counter" (v0 + 5) (Metrics.value b);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Snf_obs.Metrics: \"test.obs.idem\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test.obs.idem"))

let test_gauges () =
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set_gauge g 2.5;
  Alcotest.(check (option (float 0.0))) "last write wins" (Some 2.5)
    (Metrics.gauge_value g);
  Metrics.set_gauge g 7.0;
  Alcotest.(check (option (float 0.0))) "overwritten" (Some 7.0) (Metrics.gauge_value g)

let hist_of name =
  List.assoc_opt name (Metrics.snapshot ()).Metrics.histograms

let test_histogram_buckets () =
  let h = Metrics.histogram "test.obs.hist" in
  let before =
    Option.value (hist_of "test.obs.hist")
      ~default:{ Metrics.count = 0; sum = 0; buckets = [] }
  in
  (* bucket index = bit length: 1 -> 1, 5 -> 3, 1024 -> 11, 0 -> 0 *)
  List.iter (Metrics.observe h) [ 1; 5; 5; 1024; 0 ];
  let after =
    match hist_of "test.obs.hist" with
    | Some x -> x
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "count" (before.Metrics.count + 5) after.Metrics.count;
  Alcotest.(check int) "sum" (before.Metrics.sum + 1035) after.Metrics.sum;
  let bucket b =
    Option.value (List.assoc_opt b after.Metrics.buckets) ~default:0
    - Option.value (List.assoc_opt b before.Metrics.buckets) ~default:0
  in
  Alcotest.(check int) "bucket 0 (non-positive)" 1 (bucket 0);
  Alcotest.(check int) "bucket 1" 1 (bucket 1);
  Alcotest.(check int) "bucket 3" 2 (bucket 3);
  Alcotest.(check int) "bucket 11" 1 (bucket 11)

let test_counter_diff () =
  let c = Metrics.counter "test.obs.diff" in
  let before = Metrics.snapshot () in
  Metrics.add c 3;
  let moved = Metrics.counter_diff before (Metrics.snapshot ()) in
  Alcotest.(check (option int)) "moved by 3" (Some 3)
    (List.assoc_opt "test.obs.diff" moved);
  Alcotest.(check (option int)) "untouched counters absent" None
    (List.assoc_opt "test.obs.idem" moved)

(* --- per-domain shards merge deterministically ----------------------------- *)

let prop_counters_domain_independent =
  Helpers.qtest ~count:30 "counter/histogram totals independent of SNF_DOMAINS"
    QCheck2.Gen.(list_size (int_range 1 150) (int_bound 60))
    (fun xs ->
      let c = Metrics.counter "test.obs.par_counter" in
      let h = Metrics.histogram "test.obs.par_hist" in
      let arr = Array.of_list xs in
      let run d =
        with_domains d (fun () ->
            let c0 = Metrics.value c in
            let h0 =
              Option.value (hist_of "test.obs.par_hist")
                ~default:{ Metrics.count = 0; sum = 0; buckets = [] }
            in
            ignore
              (Snf_exec.Parallel.tabulate ~domains:d (Array.length arr) (fun i ->
                   Metrics.add c arr.(i);
                   Metrics.observe h arr.(i);
                   i));
            let h1 =
              match hist_of "test.obs.par_hist" with
              | Some x -> x
              | None -> { Metrics.count = 0; sum = 0; buckets = [] }
            in
            ( Metrics.value c - c0,
              h1.Metrics.count - h0.Metrics.count,
              h1.Metrics.sum - h0.Metrics.sum ))
      in
      let expected = (List.fold_left ( + ) 0 xs, List.length xs, List.fold_left ( + ) 0 xs) in
      run 1 = expected && run 4 = expected)

(* --- spans ----------------------------------------------------------------- *)

let test_span_disabled_is_transparent () =
  Alcotest.(check bool) "disabled by default" false (Span.enabled ());
  let ran = ref false in
  let r = Span.with_ ~name:"not.recorded" (fun () -> ran := true; 41 + 1) in
  Alcotest.(check int) "returns f ()" 42 r;
  Alcotest.(check bool) "body ran" true !ran

let test_span_nesting_ordering () =
  with_fake_clock (fun () ->
      Span.reset ();             (* epoch = 1 s *)
      Span.set_enabled true;
      let r =
        Span.with_ ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
            (* start = 2 s *)
            let a = Span.with_ ~name:"inner1" (fun () -> 10) in
            (* inner1: start 3, end 4 *)
            let b = Span.with_ ~name:"inner2" (fun () -> 20) in
            (* inner2: start 5, end 6 *)
            a + b)
        (* outer end = 7 s *)
      in
      Alcotest.(check int) "value through nested spans" 30 r;
      match Span.events () with
      | [ outer; inner1; inner2 ] ->
        Alcotest.(check string) "outer first (earliest start)" "outer" outer.Span.name;
        Alcotest.(check string) "then inner1" "inner1" inner1.Span.name;
        Alcotest.(check string) "then inner2" "inner2" inner2.Span.name;
        Alcotest.(check (float 1e-6)) "outer ts" 1e6 outer.Span.ts_us;
        Alcotest.(check (float 1e-6)) "outer dur" 5e6 outer.Span.dur_us;
        Alcotest.(check (float 1e-6)) "inner1 ts" 2e6 inner1.Span.ts_us;
        Alcotest.(check (float 1e-6)) "inner1 dur" 1e6 inner1.Span.dur_us;
        Alcotest.(check (float 1e-6)) "inner2 ts" 4e6 inner2.Span.ts_us;
        Alcotest.(check int) "outer depth" 0 outer.Span.depth;
        Alcotest.(check int) "inner depths" 1 inner1.Span.depth;
        Alcotest.(check int) "inner2 depth" 1 inner2.Span.depth;
        Alcotest.(check bool) "seq orders starts" true
          (outer.Span.seq < inner1.Span.seq && inner1.Span.seq < inner2.Span.seq);
        Alcotest.(check (list (pair string string))) "attrs kept" [ ("k", "v") ]
          outer.Span.attrs
      | evs -> Alcotest.fail (Printf.sprintf "expected 3 spans, got %d" (List.length evs)))

let test_span_records_on_exception () =
  with_fake_clock (fun () ->
      Span.reset ();
      Span.set_enabled true;
      (try Span.with_ ~name:"raises" (fun () -> failwith "boom") with Failure _ -> ());
      match Span.events () with
      | [ e ] ->
        Alcotest.(check string) "span recorded" "raises" e.Span.name;
        Alcotest.(check bool) "duration measured" true (e.Span.dur_us > 0.0)
      | evs -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length evs)))

(* --- Chrome trace export round-trip --------------------------------------- *)

let test_chrome_trace_roundtrip () =
  with_fake_clock (fun () ->
      Span.reset ();
      Span.set_enabled true;
      Span.with_ ~name:"root" ~attrs:[ ("mode", "test") ] (fun () ->
          Span.with_ ~name:"child_a" (fun () ->
              Span.with_ ~name:"grandchild" (fun () -> ()));
          Span.with_ ~name:"child_b" (fun () -> ()));
      let events = Span.events () in
      let c = Metrics.counter "test.obs.export" in
      Metrics.add c 7;
      let snap = Metrics.snapshot () in
      let doc = Export.chrome_trace ~metrics:snap events in
      (* serialize, parse back, recover the spans *)
      let text = Json.to_string doc in
      let parsed =
        match Json.of_string text with
        | Ok j -> j
        | Error e -> Alcotest.fail ("parse: " ^ e)
      in
      Alcotest.(check bool) "emit/parse fixpoint" true (Json.equal doc parsed);
      let back =
        match Export.spans_of_chrome_trace parsed with
        | Ok evs -> evs
        | Error e -> Alcotest.fail ("spans_of_chrome_trace: " ^ e)
      in
      Alcotest.(check int) "span count survives" (List.length events) (List.length back);
      List.iter2
        (fun (orig : Span.event) (rt : Span.event) ->
          Alcotest.(check string) "name" orig.Span.name rt.Span.name;
          Alcotest.(check (float 1e-6)) "ts" orig.Span.ts_us rt.Span.ts_us;
          Alcotest.(check (float 1e-6)) "dur" orig.Span.dur_us rt.Span.dur_us;
          Alcotest.(check int) "depth recovered from containment" orig.Span.depth
            rt.Span.depth;
          Alcotest.(check int) "domain" orig.Span.domain rt.Span.domain;
          Alcotest.(check (list (pair string string))) "attrs" orig.Span.attrs
            rt.Span.attrs)
        events back;
      let counters = Export.counters_of_chrome_trace parsed in
      Alcotest.(check (option int)) "embedded metrics readable"
        (List.assoc_opt "test.obs.export" snap.Metrics.counters)
        (List.assoc_opt "test.obs.export" counters))

let test_metrics_json_shape () =
  let c = Metrics.counter "test.obs.shape" in
  Metrics.incr c;
  let j = Export.metrics_json (Metrics.snapshot ()) in
  match Option.bind (Json.member "counters" j) (Json.member "test.obs.shape") with
  | Some v ->
    Alcotest.(check bool) "counter value present" true (Json.to_int_opt v <> None)
  | None -> Alcotest.fail "counters object missing registered counter"

(* --- executor integration -------------------------------------------------- *)

let exec_owner n =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "a"; Attribute.int "b"; Attribute.int "c" ])
      (List.init n (fun i ->
           [| Value.Int (i mod 13); Value.Int (i * 17); Value.Int (i mod 7) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("a", Scheme.Det); ("b", Scheme.Ndet); ("c", Scheme.Det) ]
  in
  let g = Snf_deps.Dep_graph.create [ "a"; "b"; "c" ] in
  let g = Snf_deps.Dep_graph.declare_dependent g "a" "b" in
  let g = Snf_deps.Dep_graph.declare_dependent g "b" "c" in
  Snf_exec.System.outsource ~name:"obs" ~graph:g r policy

let test_executor_counters_match_trace () =
  let owner = exec_owner 150 in
  let q =
    Snf_exec.Query.point ~select:[ "b" ] [ ("a", Value.Int 5); ("c", Value.Int 2) ]
  in
  let before = Metrics.snapshot () in
  let trace =
    match Snf_exec.System.query owner q with
    | Ok (_, tr) -> tr
    | Error e -> Alcotest.fail e
  in
  let moved = Metrics.counter_diff before (Metrics.snapshot ()) in
  let delta name = Option.value (List.assoc_opt name moved) ~default:0 in
  Alcotest.(check int) "scanned_cells" trace.Snf_exec.Executor.scanned_cells
    (delta "exec.query.scanned_cells");
  Alcotest.(check int) "comparisons" trace.Snf_exec.Executor.comparisons
    (delta "exec.query.comparisons");
  Alcotest.(check int) "rows_processed" trace.Snf_exec.Executor.rows_processed
    (delta "exec.query.rows_processed");
  Alcotest.(check int) "result_rows" trace.Snf_exec.Executor.result_rows
    (delta "exec.query.result_rows");
  Alcotest.(check int) "one query" 1 (delta "exec.query.count");
  Alcotest.(check int) "bitonic comparators equal join comparisons"
    trace.Snf_exec.Executor.comparisons
    (delta "exec.bitonic.comparators")

let test_executor_phase_spans () =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.reset ();
      Span.set_enabled true;
      let owner = exec_owner 120 in
      let q = Snf_exec.Query.point ~select:[ "b" ] [ ("a", Value.Int 3) ] in
      (match Snf_exec.System.query owner q with
       | Ok _ -> ()
       | Error e -> Alcotest.fail e);
      let events = Span.events () in
      let named name = List.filter (fun e -> e.Span.name = name) events in
      let root =
        match named "query" with
        | [ e ] -> e
        | l -> Alcotest.fail (Printf.sprintf "expected 1 query span, got %d" (List.length l))
      in
      List.iter
        (fun phase ->
          match named phase with
          | [] -> Alcotest.fail (phase ^ " span missing")
          | es ->
            List.iter
              (fun (e : Span.event) ->
                if e.Span.domain = root.Span.domain then
                  Alcotest.(check int) (phase ^ " nests under query")
                    (root.Span.depth + 1) e.Span.depth)
              es)
        [ "query.mint_tokens"; "query.server_filter"; "query.reconstruct";
          "query.client_decrypt" ];
      Alcotest.(check bool) "encryption spans recorded" true
        (named "enc.encrypt" <> [] && named "enc.leaf" <> []))

(* --- ledger JSON round-trip ------------------------------------------------ *)

let test_ledger_report_json_roundtrip () =
  let owner = exec_owner 100 in
  let ledger = Snf_exec.Ledger.create owner in
  List.iter
    (fun q ->
      match Snf_exec.Ledger.query ~use_index:true ledger q with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ Snf_exec.Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ];
      Snf_exec.Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ];
      Snf_exec.Query.point ~select:[ "b"; "c" ] [ ("a", Value.Int 7); ("c", Value.Int 1) ] ];
  List.iter
    (function Ok _ -> () | Error e -> Alcotest.fail e)
    (Snf_exec.Ledger.query_batch ledger
       [ Snf_exec.Query.point ~select:[ "b" ] [ ("a", Value.Int 2) ];
         Snf_exec.Query.point ~select:[ "c" ] [ ("a", Value.Int 4) ] ]);
  let report = Snf_exec.Ledger.report ledger in
  Alcotest.(check int) "five queries recorded" 5 report.Snf_exec.Ledger.queries;
  Alcotest.(check int) "per-query metric snapshots" 5
    (List.length report.Snf_exec.Ledger.query_metrics);
  Alcotest.(check int) "one batch recorded" 1 report.Snf_exec.Ledger.batches;
  Alcotest.(check int) "batch carried two queries" 2
    report.Snf_exec.Ledger.batch_queries;
  (* Batch members after the first carry [] by convention (the whole
     batch's delta sits on the first entry), so only demand that at most
     one entry is empty. *)
  Alcotest.(check bool) "queries moved counters" true
    (List.length
       (List.filter (fun qm -> qm = []) report.Snf_exec.Ledger.query_metrics)
     <= 1);
  Alcotest.(check bool) "lazy index builds recorded" true
    (report.Snf_exec.Ledger.index_misses >= 1);
  Alcotest.(check bool) "repeat probes hit the cache" true
    (report.Snf_exec.Ledger.index_hits >= 1);
  let text = Json.to_string (Snf_exec.Ledger.report_to_json report) in
  match Result.bind (Json.of_string text) Snf_exec.Ledger.report_of_json with
  | Ok back -> Alcotest.(check bool) "report round-trips" true (back = report)
  | Error e -> Alcotest.fail ("round-trip: " ^ e)

let suite =
  [ t "registration idempotent by name" test_registration_idempotent;
    t "gauges last-write-wins" test_gauges;
    t "histogram log2 buckets" test_histogram_buckets;
    t "counter_diff reports movers" test_counter_diff;
    prop_counters_domain_independent;
    t "disabled tracer is transparent" test_span_disabled_is_transparent;
    t "span nesting and ordering" test_span_nesting_ordering;
    t "span records on exception" test_span_records_on_exception;
    t "chrome trace round-trip" test_chrome_trace_roundtrip;
    t "metrics json shape" test_metrics_json_shape;
    t "executor counters match trace" test_executor_counters_match_trace;
    t "executor phase spans" test_executor_phase_spans;
    t "ledger report json round-trip" test_ledger_report_json_roundtrip ]

(* Order-consistency properties of the two order-revealing primitives:
   ciphertext comparison must equal plaintext comparison for every pair —
   including adjacent values, duplicates and the domain endpoints — and
   under every key. *)

open Helpers
module Prf = Snf_crypto.Prf
module Ope = Snf_crypto.Ope
module Ore = Snf_crypto.Ore

let key i = Prf.key_of_string (Printf.sprintf "ope-order-test-%d" i)

let cmp3 c = if c < 0 then -1 else if c > 0 then 1 else 0

(* (key index, domain bits, x, y) with x, y anywhere in the domain. *)
let pair_gen =
  let open QCheck2.Gen in
  let* k = 0 -- 7 in
  let* bits = 1 -- 16 in
  let dom = (1 lsl bits) - 1 in
  let* x = 0 -- dom in
  let+ y = 0 -- dom in
  (k, bits, x, y)

let ope_order =
  qtest ~count:400 "OPE: ciphertext order = plaintext order (any key)" pair_gen
    (fun (k, bits, x, y) ->
      let t = Ope.create ~key:(key k) ~domain_bits:bits () in
      cmp3 (Ope.compare_ciphertexts (Ope.encrypt t x) (Ope.encrypt t y))
      = cmp3 (compare x y))

let ope_roundtrip =
  qtest ~count:300 "OPE: decrypt (encrypt x) = x" pair_gen (fun (k, bits, x, _) ->
      let t = Ope.create ~key:(key k) ~domain_bits:bits () in
      Ope.decrypt t (Ope.encrypt t x) = x)

let ore_order =
  qtest ~count:400 "ORE: ciphertext order = plaintext order (any key)" pair_gen
    (fun (k, bits, x, y) ->
      let t = Ore.create ~key:(key k) ~bits in
      cmp3 (Ore.compare_ciphertexts (Ore.encrypt t x) (Ore.encrypt t y))
      = cmp3 (compare x y))

let ore_symbols_roundtrip =
  qtest ~count:200 "ORE: of_symbols (symbols c) compares like c" pair_gen
    (fun (k, bits, x, y) ->
      let t = Ore.create ~key:(key k) ~bits in
      let cx = Ore.encrypt t x and cy = Ore.encrypt t y in
      Ore.compare_ciphertexts (Ore.of_symbols (Ore.symbols cx)) cy
      = Ore.compare_ciphertexts cx cy)

let adjacent_and_duplicates () =
  let bits = 10 in
  let dom = 1 lsl bits in
  List.iter
    (fun k ->
      let ope = Ope.create ~key:(key k) ~domain_bits:bits () in
      let ore = Ore.create ~key:(key k) ~bits in
      for x = 0 to dom - 2 do
        (* strictly increasing on every adjacent pair: the tightest order check *)
        if not (Ope.encrypt ope x < Ope.encrypt ope (x + 1)) then
          Alcotest.failf "key %d: OPE not increasing at %d" k x;
        if not (Ore.compare_ciphertexts (Ore.encrypt ore x) (Ore.encrypt ore (x + 1)) < 0)
        then Alcotest.failf "key %d: ORE not increasing at %d" k x
      done;
      (* duplicates: deterministic, equality-revealing *)
      check_int "OPE duplicate" (Ope.encrypt ope 137) (Ope.encrypt ope 137);
      check_int "ORE duplicate compares equal" 0
        (Ore.compare_ciphertexts (Ore.encrypt ore 137) (Ore.encrypt ore 137));
      check_bool "ORE duplicate has no diff index" true
        (Ore.first_diff_index (Ore.encrypt ore 137) (Ore.encrypt ore 137) = None))
    [ 0; 1; 2 ]

let domain_endpoints () =
  List.iter
    (fun bits ->
      let dom_max = (1 lsl bits) - 1 in
      let ope = Ope.create ~key:(key 9) ~domain_bits:bits () in
      check_int "min round-trips" 0 (Ope.decrypt ope (Ope.encrypt ope 0));
      check_int "max round-trips" dom_max (Ope.decrypt ope (Ope.encrypt ope dom_max));
      check_bool "min < max ciphertext" true
        (bits = 0 || Ope.encrypt ope 0 <= Ope.encrypt ope dom_max);
      check_bool "ciphertext below 2^range_bits" true
        (Ope.encrypt ope dom_max < 1 lsl Ope.range_bits ope);
      check_bool "out-of-domain rejected" true
        (match Ope.encrypt ope (dom_max + 1) with
         | exception Invalid_argument _ -> true
         | _ -> false);
      let ore = Ore.create ~key:(key 9) ~bits in
      check_bool "ORE min < max" true
        (bits >= 1
         && Ore.compare_ciphertexts (Ore.encrypt ore 0) (Ore.encrypt ore dom_max) < 0
            || dom_max = 0))
    [ 1; 4; 12; 20 ]

let keys_differ () =
  (* Different keys give different curves (overwhelmingly), while each
     stays order-consistent — the property the onion check relies on. *)
  let bits = 12 in
  let t0 = Ope.create ~key:(key 0) ~domain_bits:bits ()
  and t1 = Ope.create ~key:(key 1) ~domain_bits:bits () in
  let differs = ref false in
  for x = 0 to 255 do
    if Ope.encrypt t0 x <> Ope.encrypt t1 x then differs := true
  done;
  check_bool "distinct keys produce distinct OPE curves" true !differs

let suite =
  [ ope_order;
    ope_roundtrip;
    ore_order;
    ore_symbols_roundtrip;
    Alcotest.test_case "adjacent values and duplicates" `Quick adjacent_and_duplicates;
    Alcotest.test_case "domain endpoints" `Quick domain_endpoints;
    Alcotest.test_case "keys give distinct curves" `Quick keys_differ ]

(* Determinism of the multicore fan-out layer: every output — raw
   tabulations, serialized ciphertext stores, query answers, Table I
   numbers — must be bit-identical whatever the domain count. *)

open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme
module Prf = Snf_crypto.Prf
module Prng = Snf_crypto.Prng

let t name f = Alcotest.test_case name `Quick f

(* Run [f] under exactly [domains] domains, restoring the prior setting. *)
let with_domains domains f =
  let saved = Parallel.domain_count () in
  Parallel.set_domain_count domains;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved) f

let test_tabulate_matches_sequential () =
  let f i = (i * 2654435761) land 0xFFFF in
  let expected = Array.init 1000 f in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "tabulate, %d domains" d)
        true
        (with_domains d (fun () -> Parallel.tabulate 1000 f) = expected))
    [ 1; 2; 3; 7 ];
  (* explicit ?domains bypasses the small-input cutoff *)
  Alcotest.(check bool) "explicit domains on small input" true
    (Parallel.tabulate ~domains:3 5 f = Array.init 5 f);
  Alcotest.(check bool) "empty" true (Parallel.tabulate 0 f = [||]);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Parallel.tabulate: negative size") (fun () ->
      ignore (Parallel.tabulate (-1) f));
  Alcotest.check_raises "bad domain count"
    (Invalid_argument "Parallel.set_domain_count: must be >= 1") (fun () ->
      Parallel.set_domain_count 0)

let test_map_preserves_order () =
  let l = List.init 200 (fun i -> i * 3) in
  let f x = x * x in
  Alcotest.(check (list int)) "map_list = List.map" (List.map f l)
    (with_domains 3 (fun () -> Parallel.map_list f l));
  let arr = Array.init 200 (fun i -> i * 5) in
  Alcotest.(check bool) "map = Array.map" true
    (with_domains 2 (fun () -> Parallel.map f arr) = Array.map f arr)

let test_item_prng () =
  let key = Prf.key_of_string "item-prng" in
  let stream k i n = List.init n (fun _ -> Prng.int (Parallel.item_prng ~key:k i) 1_000_000) in
  Alcotest.(check (list int)) "same (key, index), same stream" (stream key 7 20)
    (stream key 7 20);
  Alcotest.(check bool) "indexes independent" true (stream key 7 20 <> stream key 8 20);
  Alcotest.(check bool) "keys independent" true
    (stream key 7 20 <> stream (Prf.key_of_string "other") 7 20)

(* --- end-to-end: bulk encryption ------------------------------------------- *)

let mixed_relation n =
  Relation.create
    (Schema.of_attributes [ Attribute.int "a"; Attribute.int "b"; Attribute.int "c" ])
    (List.init n (fun i ->
         [| Value.Int (i mod 13); Value.Int (i * 17); Value.Int (i mod 89) |]))

let outsourced n =
  let policy =
    Snf_core.Policy.create
      [ ("a", Scheme.Det); ("b", Scheme.Ndet); ("c", Scheme.Phe) ]
  in
  let g = Snf_deps.Dep_graph.create [ "a"; "b"; "c" ] in
  let g = Snf_deps.Dep_graph.declare_dependent g "a" "b" in
  System.outsource ~name:"par" ~graph:g (mixed_relation n) policy

let test_ciphertexts_domain_independent () =
  let wire d = with_domains d (fun () -> Wire.to_string (outsourced 120).System.enc) in
  let w1 = wire 1 in
  Alcotest.(check bool) "1 vs 3 domains" true (w1 = wire 3);
  Alcotest.(check bool) "1 vs 5 domains" true (w1 = wire 5)

let test_answers_domain_independent () =
  let queries =
    [ Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ];
      Query.point ~select:[ "a"; "b" ] [ ("a", Value.Int 12) ];
      Query.point ~select:[ "c" ] [ ("a", Value.Int 3) ] ]
  in
  let answers d =
    with_domains d (fun () ->
        let o = outsourced 120 in
        List.map
          (fun q ->
            match System.query o q with
            | Ok (ans, tr) ->
              (List.sort compare (Relation.rows ans), tr.Executor.scanned_cells)
            | Error e -> Alcotest.fail e)
          queries)
  in
  Alcotest.(check bool) "answers and scan counts, 1 vs 3 domains" true
    (answers 1 = answers 3)

let test_index_counters () =
  (* Index accounting lives in the process-wide Snf_obs counters shared by
     Enc_relation, Ledger, and the index ablation; a fresh store is
     observed through deltas. *)
  let m_hits = Snf_obs.Metrics.counter "exec.eq_index.hits" in
  let m_builds = Snf_obs.Metrics.counter "exec.eq_index.builds" in
  let o = outsourced 120 in
  let hits0 = Snf_obs.Metrics.value m_hits in
  let builds0 = Snf_obs.Metrics.value m_builds in
  let hits () = Snf_obs.Metrics.value m_hits - hits0 in
  let builds () = Snf_obs.Metrics.value m_builds - builds0 in
  let q = Query.point ~select:[ "b" ] [ ("a", Value.Int 5) ] in
  (match System.query ~use_index:true o q with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "first indexed query builds" 1 (builds ());
  Alcotest.(check int) "no cache hit on first build" 0 (hits ());
  (match System.query ~use_index:true o q with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "second query hits the cache" 1 (hits ());
  Alcotest.(check int) "no further builds" 1 (builds ());
  (* un-indexed scans leave the counters alone *)
  (match System.query ~use_index:false o q with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "scan path does not touch cache" 1 (hits ())

let test_decrypt_roundtrip_parallel () =
  (* Decryption of a parallel-encrypted store recovers the plaintext. *)
  with_domains 3 (fun () ->
      let o = outsourced 120 in
      let reference = Query.reference_answer (mixed_relation 120) in
      List.iter
        (fun q ->
          match System.query o q with
          | Ok (ans, _) ->
            Alcotest.(check bool)
              (Format.asprintf "%a" Query.pp q)
              true
              (Relation.equal_as_sets ans (reference q))
          | Error e -> Alcotest.fail e)
        [ Query.point ~select:[ "b" ] [ ("a", Value.Int 4) ];
          Query.point ~select:[ "a"; "c" ] [ ("a", Value.Int 0) ] ])

let suite =
  [ t "tabulate matches sequential" test_tabulate_matches_sequential;
    t "map preserves order" test_map_preserves_order;
    t "item prng" test_item_prng;
    t "ciphertexts domain-independent" test_ciphertexts_domain_independent;
    t "answers domain-independent" test_answers_domain_independent;
    t "eq-index cache counters" test_index_counters;
    t "parallel encrypt roundtrip" test_decrypt_roundtrip_parallel ]

(* Sharded scatter-gather execution: placement properties of the two
   assignment policies, and backend invisibility of the coordinator —
   a sharded twin of one store must be indistinguishable from a single
   backend through the trust boundary (same answer bags, same
   exec.query.* accounting, byte-identical wire traffic), with the
   per-shard counters reconciling exactly against the inner shard
   connections' own stats. *)

open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme
module Metrics = Snf_obs.Metrics

let t name f = Alcotest.test_case name `Quick f

let mem_connect _ = Server_api.connect (module Backend_mem) (Backend_mem.empty ())

(* One dominant DET value group plus distinct singletons — the planted
   skew shape the Skew policy is built to absorb. *)
let skewed_relation ~tag ~dominant ~singles =
  Relation.create
    (Schema.of_attributes [ Attribute.text "grp"; Attribute.text "pay" ])
    (List.init (dominant + singles) (fun i ->
         let g =
           if i < dominant then Printf.sprintf "dom_%s" tag
           else Printf.sprintf "one_%s_%d" tag i
         in
         [| Value.Text g; Value.Text (Printf.sprintf "p%d" i) |]))

let skewed_owner ?backend ~tag ~dominant ~singles () =
  let r = skewed_relation ~tag ~dominant ~singles in
  let policy =
    Snf_core.Policy.create [ ("grp", Scheme.Det); ("pay", Scheme.Ndet) ]
  in
  let g = Snf_deps.Dep_graph.create [ "grp"; "pay" ] in
  System.outsource ?backend ~name:("shard-" ^ tag) ~graph:g r policy

let max_load ~shards assign =
  Array.fold_left max 0 (Backend_sharded.shard_loads ~shards assign)

(* --- placement properties -------------------------------------------------- *)

let test_policy_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Backend_sharded.policy_name p ^ " round-trips") true
        (Backend_sharded.policy_of_string (Backend_sharded.policy_name p) = Some p))
    [ Backend_sharded.Hash; Backend_sharded.Skew ];
  Alcotest.(check bool) "unknown policy rejected" true
    (Backend_sharded.policy_of_string "round-robin" = None)

(* Deterministic, total, and in range: a pure function of the image. *)
let test_assignment_deterministic () =
  let o = skewed_owner ~tag:"det" ~dominant:7 ~singles:6 () in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  List.iter
    (fun policy ->
      let a1 = Backend_sharded.assignment policy ~shards:3 o.System.enc in
      let a2 = Backend_sharded.assignment policy ~shards:3 o.System.enc in
      Alcotest.(check bool)
        (Backend_sharded.policy_name policy ^ " assignment is deterministic")
        true (a1 = a2);
      List.iter
        (fun (leaf, owners) ->
          Array.iter
            (fun s ->
              Alcotest.(check bool)
                (Printf.sprintf "%s owner in range" leaf)
                true
                (s >= 0 && s < 3))
            owners)
        a1;
      Alcotest.(check int)
        (Backend_sharded.policy_name policy ^ " loads cover every row")
        (13 * List.length a1)
        (Array.fold_left ( + ) 0 (Backend_sharded.shard_loads ~shards:3 a1)))
    [ Backend_sharded.Hash; Backend_sharded.Skew ]

(* The greedy (LPT) bound holds on any input: max shard load is at most
   the even split plus the largest value group. *)
let lpt_bound_prop =
  let gen =
    QCheck2.Gen.(
      quad (int_range 4 12) (int_range 3 9) (int_range 2 4) (int_range 0 999))
  in
  Helpers.qtest ~count:20 "skew placement obeys the LPT bound" gen
    (fun (dominant, singles, shards, salt) ->
      let tag = Printf.sprintf "lpt%d_%d_%d_%d" dominant singles shards salt in
      let o = skewed_owner ~tag ~dominant ~singles () in
      Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
      let assign =
        Backend_sharded.assignment Backend_sharded.Skew ~shards o.System.enc
      in
      let total = dominant + singles in
      let bound = ((total + shards - 1) / shards) + dominant in
      max_load ~shards assign <= bound)

(* On the planted shape — one dominant group plus unit groups — greedy
   placement is optimal, so hash placement can never beat it: hash's
   max load is at least max(dominant, ceil(total/shards)), which is
   exactly where greedy lands. *)
let skew_beats_hash_prop =
  let gen =
    QCheck2.Gen.(
      quad (int_range 6 14) (int_range 4 10) (int_range 2 4) (int_range 0 999))
  in
  Helpers.qtest ~count:20 "skew max load <= hash max load on planted skew" gen
    (fun (dominant, singles, shards, salt) ->
      let tag = Printf.sprintf "sh%d_%d_%d_%d" dominant singles shards salt in
      let o = skewed_owner ~tag ~dominant ~singles () in
      Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
      let enc = o.System.enc in
      let skew =
        max_load ~shards (Backend_sharded.assignment Backend_sharded.Skew ~shards enc)
      in
      let hash =
        max_load ~shards (Backend_sharded.assignment Backend_sharded.Hash ~shards enc)
      in
      skew <= hash)

(* And strictly beats it somewhere: among a deterministic family of
   two-equal-group relations on two shards, hash placement collides the
   two groups onto one shard for some member (placement is a pure
   function of the ciphertext image, so this witness is stable), while
   skew placement always splits them. *)
let test_skew_strictly_beats_hash_somewhere () =
  let witness = ref None in
  for salt = 0 to 19 do
    if !witness = None then begin
      let tag = Printf.sprintf "split%d" salt in
      let r =
        Relation.create
          (Schema.of_attributes [ Attribute.text "grp"; Attribute.text "pay" ])
          (List.init 12 (fun i ->
               [| Value.Text (if i < 6 then "a_" ^ tag else "b_" ^ tag);
                  Value.Text (Printf.sprintf "p%d" i) |]))
      in
      let policy =
        Snf_core.Policy.create [ ("grp", Scheme.Det); ("pay", Scheme.Ndet) ]
      in
      let g = Snf_deps.Dep_graph.create [ "grp"; "pay" ] in
      let o = System.outsource ~name:("shard-" ^ tag) ~graph:g r policy in
      Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
      let enc = o.System.enc in
      let skew =
        max_load ~shards:2
          (Backend_sharded.assignment Backend_sharded.Skew ~shards:2 enc)
      in
      let hash =
        max_load ~shards:2
          (Backend_sharded.assignment Backend_sharded.Hash ~shards:2 enc)
      in
      Alcotest.(check int) (tag ^ ": skew splits the two groups") 6 skew;
      if skew < hash then witness := Some (tag, skew, hash)
    end
  done;
  match !witness with
  | Some _ -> ()
  | None ->
    Alcotest.fail
      "hash never collided two equal groups across 20 deterministic relations"

(* --- coordinator parity ---------------------------------------------------- *)

(* Every scheme, several leaves — the same shape the backend suite pins. *)
let mixed_owner () =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "id"; Attribute.text "note"; Attribute.text "code";
           Attribute.int "score"; Attribute.int "level"; Attribute.int "amount" ])
      (List.init 12 (fun i ->
           [| Value.Int i; Value.Text (Printf.sprintf "n%d" i);
              Value.Text (Printf.sprintf "c%d" (i mod 3));
              Value.Int (i * 7 mod 13); Value.Int (i mod 4); Value.Int (i * 10) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("id", Scheme.Plain); ("note", Scheme.Ndet); ("code", Scheme.Det);
        ("score", Scheme.Ope); ("level", Scheme.Ore); ("amount", Scheme.Phe) ]
  in
  let g = Snf_deps.Dep_graph.create (Snf_core.Policy.attrs policy) in
  System.outsource ~name:"shard-parity" ~graph:g r policy

let queries =
  [ Query.point ~select:[ "note" ] [ ("code", Value.Text "c1") ];
    Query.point ~select:[ "note"; "score" ] [ ("code", Value.Text "c0") ];
    Query.point ~select:[ "id"; "note" ] [ ("code", Value.Text "c2") ];
    Query.point ~select:[ "note" ] [ ("code", Value.Text "nowhere") ] ]

let run_q ?mode ?use_index o q =
  match System.query ?mode ?use_index o q with
  | Ok (ans, tr) -> (Helpers.bag ans, tr)
  | Error e -> Alcotest.fail e

let shard_counter_sums deltas =
  List.fold_left
    (fun (r, u, d) (name, v) ->
      let has suffix =
        let n = String.length name and m = String.length suffix in
        n >= m && String.sub name (n - m) m = suffix
      in
      if has ".requests" then (r + v, u, d)
      else if has ".bytes_up" then (r, u + v, d)
      else if has ".bytes_down" then (r, u, d + v)
      else (r, u, d))
    (0, 0, 0)
    (Metrics.counters_with_prefix "exec.wire.shard" deltas)

(* The tentpole's acceptance: mem and sharded twins of one store agree
   on answers, counters and outer wire traffic for shards x domains,
   and the coordinator's per-shard counters reconcile bit-identically
   with the shard connections' own stats. *)
let test_sharded_mem_parity () =
  let saved = Parallel.domain_count () in
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved) @@ fun () ->
  List.iter
    (fun shards ->
      List.iter
        (fun domains ->
          Parallel.set_domain_count domains;
          let mem = mixed_owner () in
          let st =
            Backend_sharded.create ~policy:Backend_sharded.Skew
              ~connect:mem_connect ~shards ()
          in
          let tw = System.with_backend mem (System.sharded st) in
          Fun.protect
            ~finally:(fun () -> System.release tw; System.release mem)
          @@ fun () ->
          let name fmt =
            Printf.sprintf "%dx%d domains: %s" shards domains fmt
          in
          Alcotest.(check string) (name "twin is sharded-bound") "sharded"
            (System.backend_kind_name (System.backend tw));
          Alcotest.(check int) (name "coordinator spans the shards") shards
            (Backend_sharded.shard_count st);
          Alcotest.(check int) (name "every row placed")
            (Array.fold_left ( + ) 0
               (Backend_sharded.shard_loads ~shards
                  (Backend_sharded.assignment (Backend_sharded.policy st)
                     ~shards mem.System.enc))
            * 1)
            (Array.fold_left ( + ) 0 (Backend_sharded.loads st));
          List.iter
            (fun (mode, use_index, tag) ->
              List.iteri
                (fun i q ->
                  let qname fmt = name (Printf.sprintf "%s q%d: %s" tag i fmt) in
                  let stats_before = Backend_sharded.shard_stats st in
                  let before = Metrics.snapshot () in
                  let b1, t1 = run_q ~mode ~use_index tw q in
                  let after = Metrics.snapshot () in
                  let stats_after = Backend_sharded.shard_stats st in
                  let b0, t0 = run_q ~mode ~use_index mem q in
                  Alcotest.(check bool) (qname "same answer bag") true (b0 = b1);
                  Alcotest.(check bool)
                    (qname "matches the plaintext reference") true
                    (b0 = Helpers.bag (System.reference mem q));
                  List.iter
                    (fun (what, a, b) -> Alcotest.(check int) (qname what) a b)
                    [ ("scanned cells", t0.Executor.scanned_cells,
                       t1.Executor.scanned_cells);
                      ("index probes", t0.Executor.index_probes,
                       t1.Executor.index_probes);
                      ("comparisons", t0.Executor.comparisons,
                       t1.Executor.comparisons);
                      ("rows processed", t0.Executor.rows_processed,
                       t1.Executor.rows_processed);
                      ("result rows", t0.Executor.result_rows,
                       t1.Executor.result_rows);
                      ("wire requests", t0.Executor.wire_requests,
                       t1.Executor.wire_requests);
                      ("wire bytes up", t0.Executor.wire_bytes_up,
                       t1.Executor.wire_bytes_up);
                      ("wire bytes down", t0.Executor.wire_bytes_down,
                       t1.Executor.wire_bytes_down) ];
                  (* Inner fan-out accounting: summed per-shard counter
                     movement = summed per-shard conn stats movement. *)
                  let cr, cu, cd =
                    shard_counter_sums (Metrics.counter_diff before after)
                  in
                  let sr, su, sd =
                    Array.fold_left
                      (fun (r, u, d) i ->
                        let a = stats_after.(i) and b = stats_before.(i) in
                        ( r + a.Server_api.requests - b.Server_api.requests,
                          u + a.Server_api.bytes_up - b.Server_api.bytes_up,
                          d + a.Server_api.bytes_down - b.Server_api.bytes_down ))
                      (0, 0, 0)
                      (Array.init shards Fun.id)
                  in
                  Alcotest.(check int) (qname "shard requests reconcile") sr cr;
                  Alcotest.(check int) (qname "shard bytes up reconcile") su cu;
                  Alcotest.(check int) (qname "shard bytes down reconcile") sd cd;
                  Alcotest.(check bool) (qname "fan-out is never free") true
                    (cr > 0))
                queries)
            [ (`Sort_merge, false, "sort-merge");
              (`Sort_merge, true, "sort-merge+index");
              (`Binning 4, false, "binning") ])
        [ 1; 4 ])
    [ 1; 2; 4 ]

(* Homomorphic aggregation crosses the coordinator: partial Paillier
   sums recombine to the single-backend ciphertext semantics, and
   grouped sums come back in the same canonical order. *)
let test_sharded_aggregation_parity () =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.text "dept"; Attribute.int "salary"; Attribute.text "name" ])
      [ [| Value.Text "eng"; Value.Int 100; Value.Text "a" |];
        [| Value.Text "eng"; Value.Int 150; Value.Text "b" |];
        [| Value.Text "hr"; Value.Int 90; Value.Text "c" |];
        [| Value.Text "ops"; Value.Int 75; Value.Text "d" |] ]
  in
  let policy =
    Snf_core.Policy.create
      [ ("dept", Scheme.Det); ("salary", Scheme.Phe); ("name", Scheme.Ndet) ]
  in
  let g = Snf_deps.Dep_graph.create [ "dept"; "salary"; "name" ] in
  let mem = System.outsource ~name:"shard-agg" ~graph:g r policy in
  let st =
    (* More shards than distinct groups, so some shards hold zero rows
       of the summed leaf — the empty-partial path must stay exact. *)
    Backend_sharded.create ~policy:Backend_sharded.Skew ~connect:mem_connect
      ~shards:5 ()
  in
  let tw = System.with_backend mem (System.sharded st) in
  Fun.protect ~finally:(fun () -> System.release tw; System.release mem)
  @@ fun () ->
  let leaf =
    (List.find
       (fun (l : Snf_core.Partition.leaf) -> Snf_core.Partition.mem_leaf l "salary")
       mem.System.plan.Snf_core.Normalizer.representation)
      .Snf_core.Partition.label
  in
  Alcotest.(check int) "sum agrees across the coordinator"
    (System.sum mem ~leaf ~attr:"salary")
    (System.sum tw ~leaf ~attr:"salary");
  Alcotest.(check int) "sum is the plaintext total" 415
    (System.sum tw ~leaf ~attr:"salary");
  let gs o =
    System.group_sum o ~leaf ~group_by:"dept" ~sum:"salary"
    |> List.map (fun (v, s) -> (Value.to_string v, s))
  in
  Alcotest.(check (list (pair string int))) "group sums agree across the coordinator"
    (gs mem) (gs tw);
  Alcotest.(check (list (pair string int))) "group sums are correct"
    [ ("eng", 250); ("hr", 90); ("ops", 75) ] (gs tw)

(* The differential harness's sharded arm end to end: bag, counter,
   wire and per-shard reconciliation checks all green on a generated
   instance. *)
let test_differential_sharded_twin () =
  let spec = { Snf_check.Gen.seed = 17; rows = 12; clusters = [ 3 ]; singles = 3 } in
  let outcome =
    Snf_check.Differential.run_spec ~queries:6 ~backend:(`Sharded 2) spec
  in
  (match outcome.Snf_check.Differential.failures with
   | [] -> ()
   | fs ->
     Alcotest.fail
       (String.concat "; " (List.map Snf_check.Differential.failure_to_string fs)));
  Alcotest.(check bool) "queries actually ran" true
    (outcome.Snf_check.Differential.queries_run >= 6)

let suite =
  [ t "policy names round-trip" test_policy_names;
    t "assignment deterministic, total, in range" test_assignment_deterministic;
    lpt_bound_prop;
    skew_beats_hash_prop;
    t "skew strictly beats hash on a colliding family"
      test_skew_strictly_beats_hash_somewhere;
    t "mem/sharded parity: bags, counters, wire, shard accounting"
      test_sharded_mem_parity;
    t "mem/sharded parity: homomorphic aggregation"
      test_sharded_aggregation_parity;
    t "differential sharded twin green" test_differential_sharded_twin ]

open Snf_relational
open Snf_exec
module Scheme = Snf_crypto.Scheme

let t name f = Alcotest.test_case name `Quick f

(* A relation exercising every cell shape: Plain, NDET, DET, OPE, ORE, PHE. *)
let owner () =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "id"; Attribute.text "note"; Attribute.text "code";
           Attribute.int "score"; Attribute.int "level"; Attribute.int "amount" ])
      (List.init 9 (fun i ->
           [| Value.Int i; Value.Text (Printf.sprintf "n%d" i);
              Value.Text (Printf.sprintf "c%d" (i mod 3));
              Value.Int (i * 7 mod 13); Value.Int (i mod 4); Value.Int (i * 10) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("id", Scheme.Plain); ("note", Scheme.Ndet); ("code", Scheme.Det);
        ("score", Scheme.Ope); ("level", Scheme.Ore); ("amount", Scheme.Phe) ]
  in
  let g = Snf_deps.Dep_graph.create (Snf_core.Policy.attrs policy) in
  System.outsource ~name:"wire" ~graph:g r policy

let cells_equal (a : Enc_relation.cell) (b : Enc_relation.cell) =
  match (a, b) with
  | Enc_relation.C_plain x, Enc_relation.C_plain y -> Value.equal x y
  | Enc_relation.C_bytes x, Enc_relation.C_bytes y -> String.equal x y
  | ( Enc_relation.C_ord { ord = o1; payload = p1 },
      Enc_relation.C_ord { ord = o2; payload = p2 } ) ->
    o1 = o2 && String.equal p1 p2
  | ( Enc_relation.C_ore { ore = r1; payload = p1 },
      Enc_relation.C_ore { ore = r2; payload = p2 } ) ->
    Snf_crypto.Ore.compare_ciphertexts r1 r2 = 0 && String.equal p1 p2
  | Enc_relation.C_nat x, Enc_relation.C_nat y -> Snf_bignum.Nat.equal x y
  | _ -> false

let test_roundtrip () =
  let o = owner () in
  let enc = o.System.enc in
  let enc' = Wire.of_string (Wire.to_string enc) in
  Alcotest.(check string) "relation name" enc.Enc_relation.relation_name
    enc'.Enc_relation.relation_name;
  Alcotest.(check int) "leaf count" (List.length enc.Enc_relation.leaves)
    (List.length enc'.Enc_relation.leaves);
  List.iter2
    (fun (l : Enc_relation.enc_leaf) (l' : Enc_relation.enc_leaf) ->
      Alcotest.(check string) "label" l.Enc_relation.label l'.Enc_relation.label;
      Alcotest.(check int) "rows" l.Enc_relation.row_count l'.Enc_relation.row_count;
      Alcotest.(check bool) "tids identical" true (l.Enc_relation.tids = l'.Enc_relation.tids);
      List.iter2
        (fun (c : Enc_relation.enc_column) (c' : Enc_relation.enc_column) ->
          Alcotest.(check string) "attr" c.Enc_relation.attr c'.Enc_relation.attr;
          Alcotest.(check bool) "scheme" true (c.Enc_relation.scheme = c'.Enc_relation.scheme);
          Alcotest.(check bool) "cells" true
            (Array.for_all2 cells_equal c.Enc_relation.cells c'.Enc_relation.cells))
        l.Enc_relation.columns l'.Enc_relation.columns)
    enc.Enc_relation.leaves enc'.Enc_relation.leaves;
  Alcotest.(check bool) "paillier modulus" true
    (Snf_bignum.Nat.equal enc.Enc_relation.paillier_public.Snf_crypto.Paillier.n
       enc'.Enc_relation.paillier_public.Snf_crypto.Paillier.n)

let test_loaded_store_is_queryable () =
  let o = owner () in
  let enc' = Wire.of_string (Wire.to_string o.System.enc) in
  let rep = o.System.plan.Snf_core.Normalizer.representation in
  let q = Query.point ~select:[ "note" ] [ ("code", Value.Text "c1") ] in
  match Executor.run o.System.client enc' rep q with
  | Ok (ans, _) ->
    Alcotest.(check int) "answers from the loaded image" 3 (Relation.cardinality ans);
    Alcotest.(check bool) "agrees with reference" true
      (Helpers.bag ans = Helpers.bag (System.reference o q))
  | Error e -> Alcotest.fail e

let test_loaded_phe_sum () =
  let o = owner () in
  let enc' = Wire.of_string (Wire.to_string o.System.enc) in
  let leaf =
    List.find
      (fun (l : Enc_relation.enc_leaf) ->
        List.exists (fun c -> c.Enc_relation.attr = "amount") l.Enc_relation.columns)
      enc'.Enc_relation.leaves
  in
  let cipher = Enc_relation.phe_sum enc' leaf "amount" in
  let kp = Enc_relation.client_paillier o.System.client in
  Alcotest.(check int) "homomorphic sum over loaded image" 360
    (Snf_bignum.Nat.to_int_exn (Snf_crypto.Paillier.decrypt kp cipher))

let test_corruption_detected () =
  let o = owner () in
  let blob = Wire.to_string o.System.enc in
  let reject s =
    try
      ignore (Wire.of_string s);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad magic" true (reject ("XXXX" ^ String.sub blob 4 (String.length blob - 4)));
  Alcotest.(check bool) "truncated" true (reject (String.sub blob 0 (String.length blob / 2)));
  Alcotest.(check bool) "trailing bytes" true (reject (blob ^ "junk"));
  let tampered = Bytes.of_string blob in
  Bytes.set tampered 4 '\x7f' (* version *);
  Alcotest.(check bool) "unknown version" true (reject (Bytes.to_string tampered));
  Alcotest.(check bool) "empty" true (reject "")

(* The satellite fix this pins: a store rebuilt from its wire image has an
   empty equality-index cache, yet an indexed query must behave identically
   — same answers, same index-probe accounting, same wire traffic — because
   the index is rebuilt lazily from what the image already carries. *)
let test_loaded_store_indexed_differential () =
  let o = owner () in
  let rep = o.System.plan.Snf_core.Normalizer.representation in
  let queries =
    [ Query.point ~select:[ "note" ] [ ("code", Value.Text "c1") ];
      Query.point ~select:[ "note"; "score" ] [ ("code", Value.Text "c0") ];
      Query.point ~select:[ "id" ] [ ("code", Value.Text "missing") ] ]
  in
  let run enc q =
    match Executor.run ~use_index:true o.System.client enc rep q with
    | Ok (ans, tr) -> (Helpers.bag ans, tr)
    | Error e -> Alcotest.fail e
  in
  let enc' = Wire.of_string (Wire.to_string o.System.enc) in
  List.iteri
    (fun i q ->
      let name fmt = Printf.sprintf "q%d: %s" i fmt in
      let bag0, tr0 = run o.System.enc q in
      let bag1, tr1 = run enc' q in
      Alcotest.(check bool) (name "same answer bag") true (bag0 = bag1);
      Alcotest.(check bool) (name "index served the probe") true
        (tr0.Executor.index_probes > 0);
      Alcotest.(check int) (name "index probes") tr0.Executor.index_probes
        tr1.Executor.index_probes;
      Alcotest.(check int) (name "scanned cells") tr0.Executor.scanned_cells
        tr1.Executor.scanned_cells;
      Alcotest.(check int) (name "wire requests") tr0.Executor.wire_requests
        tr1.Executor.wire_requests;
      Alcotest.(check int) (name "wire bytes up") tr0.Executor.wire_bytes_up
        tr1.Executor.wire_bytes_up;
      Alcotest.(check int) (name "wire bytes down") tr0.Executor.wire_bytes_down
        tr1.Executor.wire_bytes_down)
    queries

let test_save_load_file () =
  let o = owner () in
  let path = Filename.temp_file "snf_wire" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Wire.save path o.System.enc;
      let enc' = Wire.load path in
      Alcotest.(check int) "same measured size"
        (Enc_relation.measured_bytes o.System.enc)
        (Enc_relation.measured_bytes enc'))

let suite =
  [ t "roundtrip all cell shapes" test_roundtrip;
    t "loaded store queryable" test_loaded_store_is_queryable;
    t "loaded phe sum" test_loaded_phe_sum;
    t "corruption detected" test_corruption_detected;
    t "loaded store indexed differential" test_loaded_store_indexed_differential;
    t "save/load file" test_save_load_file ]

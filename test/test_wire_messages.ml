(* The message codec is the trust boundary's syntax: every request and
   response constructor must survive a byte round trip, and no byte-level
   damage — truncation, bit flips, random garbage — may crash the decoder
   or make it allocate unboundedly. Tokens and cells carry abstract
   ciphertexts without structural equality, so round trips are checked on
   re-serialized bytes: [to_string (of_string s) = s]. *)

open Snf_relational
open Snf_exec
module Gen = QCheck2.Gen
module Nat = Snf_bignum.Nat
module Ore = Snf_crypto.Ore

let t name f = Alcotest.test_case name `Quick f

(* {1 Generators over the message grammar} *)

let gen_label = Gen.oneofl [ "R"; "R.a~b"; "wire"; "t0"; "leaf-x" ]
let gen_attr = Gen.oneofl [ "a"; "b"; "code"; "score"; "amount" ]
let gen_blob = Gen.string_size (Gen.int_bound 16)
let gen_slot = Gen.int_bound 1000
let gen_slots = Gen.list_size (Gen.int_bound 8) gen_slot

let gen_value =
  Gen.oneof
    [ Gen.return Value.Null;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map (fun i -> Value.Int i) Gen.int;
      Gen.map (fun f -> Value.Float f) Gen.float;
      Gen.map (fun s -> Value.Text s) gen_blob ]

let gen_ore =
  Gen.map
    (fun syms -> Ore.of_symbols (Array.of_list syms))
    (Gen.list_size (Gen.int_range 1 12) (Gen.int_bound 2))

let gen_nat = Gen.map Nat.of_int Gen.nat

let gen_eq_token =
  Gen.oneof
    [ Gen.map (fun v -> Enc_relation.Eq_plain v) gen_value;
      Gen.map (fun s -> Enc_relation.Eq_det s) gen_blob;
      Gen.map (fun o -> Enc_relation.Eq_ord o) Gen.nat;
      Gen.map (fun c -> Enc_relation.Eq_ore c) gen_ore ]

let gen_range_token =
  Gen.oneof
    [ Gen.map2 (fun a b -> Enc_relation.Rng_plain (a, b)) gen_value gen_value;
      Gen.map2 (fun a b -> Enc_relation.Rng_ord (a, b)) Gen.nat Gen.nat;
      Gen.map2 (fun a b -> Enc_relation.Rng_ore (a, b)) gen_ore gen_ore ]

let gen_filter_op =
  Gen.oneof
    [ Gen.map (fun s -> Wire.F_slots s) gen_slots;
      Gen.map2 (fun a tk -> Wire.F_eq (a, tk)) gen_attr gen_eq_token;
      Gen.map2 (fun a tk -> Wire.F_range (a, tk)) gen_attr gen_range_token ]

let gen_cell =
  Gen.oneof
    [ Gen.map (fun v -> Enc_relation.C_plain v) gen_value;
      Gen.map (fun s -> Enc_relation.C_bytes s) gen_blob;
      Gen.map2
        (fun ord payload -> Enc_relation.C_ord { ord; payload })
        Gen.nat gen_blob;
      Gen.map2
        (fun ore payload -> Enc_relation.C_ore { ore; payload })
        gen_ore gen_blob;
      Gen.map (fun n -> Enc_relation.C_nat n) gen_nat ]

let gen_request =
  Gen.oneof
    [ Gen.return Wire.Describe;
      Gen.return Wire.Check_shape;
      Gen.map (fun s -> Wire.Install s) gen_blob;
      Gen.map2
        (fun (leaf, attr) key -> Wire.Index_probe { leaf; attr; key })
        (Gen.pair gen_label gen_attr)
        (Gen.option gen_blob);
      Gen.map2
        (fun leaf ops -> Wire.Filter { leaf; ops })
        gen_label
        (Gen.list_size (Gen.int_bound 4) gen_filter_op);
      Gen.map2
        (fun (leaf, attrs) slots -> Wire.Fetch_rows { leaf; attrs; slots })
        (Gen.pair gen_label (Gen.list_size (Gen.int_bound 4) gen_attr))
        gen_slots;
      Gen.map (fun leaf -> Wire.Fetch_tids { leaf }) gen_label;
      Gen.map2
        (fun (leaf, seed) (block_size, blocks) ->
          Wire.Oram_init { leaf; seed; block_size; blocks })
        (Gen.pair gen_label Gen.nat)
        (Gen.pair (Gen.int_range 1 64)
           (Gen.map Array.of_list (Gen.list_size (Gen.int_bound 6) gen_blob)));
      Gen.map2 (fun leaf slot -> Wire.Oram_read { leaf; slot }) gen_label gen_slot;
      Gen.map2 (fun leaf attr -> Wire.Phe_sum { leaf; attr }) gen_label gen_attr;
      Gen.map2
        (fun leaf (group_by, sum) -> Wire.Group_sum { leaf; group_by; sum })
        gen_label (Gen.pair gen_attr gen_attr);
      Gen.map
        (fun queries -> Wire.Q_batch { queries })
        (Gen.list_size (Gen.int_bound 4)
           (Gen.list_size (Gen.int_bound 3)
              (Gen.pair gen_label (Gen.list_size (Gen.int_bound 3) gen_filter_op))));
      Gen.return Wire.Q_store_stats ]

let gen_leaf_stats =
  Gen.map2
    (fun (s_label, s_rows) attrs ->
      { Wire.s_label;
        s_rows;
        s_attrs =
          List.map
            (fun (a_attr, a_classes) -> { Wire.a_attr; a_classes })
            attrs })
    (Gen.pair gen_label Gen.nat)
    (Gen.list_size (Gen.int_bound 3)
       (Gen.pair gen_attr
          (Gen.list_size (Gen.int_bound 4) (Gen.pair gen_blob Gen.nat))))

let gen_corruption =
  Gen.map2
    (fun (where, detail) (leaf, attr) ->
      { Integrity.where; leaf; attr; detail })
    (Gen.pair (Gen.oneofl [ "tid"; "cell"; "leaf"; "index"; "store" ]) gen_blob)
    (Gen.pair (Gen.option gen_label) (Gen.option gen_attr))

let gen_response =
  Gen.oneof
    [ Gen.return Wire.R_unit;
      Gen.map2
        (fun relation_name leaves -> Wire.R_described { relation_name; leaves })
        gen_blob
        (Gen.list_size (Gen.int_bound 4) (Gen.pair gen_label Gen.nat));
      Gen.map (fun s -> Wire.R_slots s) (Gen.option gen_slots);
      Gen.map2
        (fun mask scanned -> Wire.R_mask { mask = Array.of_list mask; scanned })
        (Gen.list_size (Gen.int_bound 40) Gen.bool)
        Gen.nat;
      Gen.map
        (fun cols ->
          Wire.R_rows (Array.of_list (List.map Array.of_list cols)))
        (Gen.list_size (Gen.int_bound 3)
           (Gen.list_size (Gen.int_bound 5) gen_cell));
      Gen.map
        (fun tids -> Wire.R_tids (Array.of_list tids))
        (Gen.list_size (Gen.int_bound 6) gen_blob);
      Gen.map2
        (fun block touches -> Wire.R_oram { block; touches })
        (Gen.option gen_blob) Gen.nat;
      Gen.map (fun n -> Wire.R_nat n) gen_nat;
      Gen.map
        (fun gs -> Wire.R_groups gs)
        (Gen.list_size (Gen.int_bound 4) (Gen.pair gen_cell gen_nat));
      Gen.map2
        (fun not_found msg -> Wire.R_error { not_found; msg })
        Gen.bool gen_blob;
      Gen.map (fun c -> Wire.R_corrupt c) gen_corruption;
      Gen.return Wire.R_busy;
      Gen.map
        (fun results ->
          Wire.R_batch
            { results =
                List.map
                  (List.map (fun (mask, scanned) -> (Array.of_list mask, scanned)))
                  results })
        (Gen.list_size (Gen.int_bound 4)
           (Gen.list_size (Gen.int_bound 3)
              (Gen.pair (Gen.list_size (Gen.int_bound 24) Gen.bool) Gen.nat)));
      Gen.map
        (fun leaves -> Wire.R_store_stats { leaves })
        (Gen.list_size (Gen.int_bound 3) gen_leaf_stats) ]

(* {1 Round trips} *)

let req_roundtrips req =
  let s = Wire.request_to_string req in
  String.equal (Wire.request_to_string (Wire.request_of_string s)) s

let resp_roundtrips resp =
  let s = Wire.response_to_string resp in
  String.equal (Wire.response_to_string (Wire.response_of_string s)) s

(* One instance of every constructor, so coverage of the grammar does not
   depend on generator luck. *)
let sample_requests =
  let ore = Ore.of_symbols [| 0; 1; 2 |] in
  [ Wire.Describe; Wire.Check_shape; Wire.Install "not-a-real-image";
    Wire.Index_probe { leaf = "R"; attr = "a"; key = None };
    Wire.Index_probe { leaf = "R"; attr = "a"; key = Some "k\x00k" };
    Wire.Filter
      { leaf = "R";
        ops =
          [ Wire.F_slots [ 0; 2; 5 ];
            Wire.F_eq ("a", Enc_relation.Eq_plain (Value.Int 3));
            Wire.F_eq ("a", Enc_relation.Eq_det "det-bytes");
            Wire.F_eq ("a", Enc_relation.Eq_ord 17);
            Wire.F_eq ("a", Enc_relation.Eq_ore ore);
            Wire.F_range ("b", Enc_relation.Rng_plain (Value.Int 1, Value.Int 9));
            Wire.F_range ("b", Enc_relation.Rng_ord (2, 4));
            Wire.F_range ("b", Enc_relation.Rng_ore (ore, ore)) ] };
    Wire.Fetch_rows { leaf = "R"; attrs = [ "a"; "b" ]; slots = [ 1; 3 ] };
    Wire.Fetch_tids { leaf = "R" };
    Wire.Oram_init
      { leaf = "R"; seed = 0x09a7; block_size = 8;
        blocks = [| "blk0\x00\x00\x00\x00"; "blk1\x01\x01\x01\x01" |] };
    Wire.Oram_read { leaf = "R"; slot = 4 };
    Wire.Phe_sum { leaf = "R"; attr = "amount" };
    Wire.Group_sum { leaf = "R"; group_by = "a"; sum = "amount" };
    Wire.Q_batch { queries = [] };
    Wire.Q_batch
      { queries =
          [ [ ("R.a", [ Wire.F_eq ("a", Enc_relation.Eq_det "tok") ]);
              ("R.b", [ Wire.F_range ("b", Enc_relation.Rng_ord (1, 5)) ]) ];
            [];
            [ ("R.a", [ Wire.F_slots [ 0; 3 ] ]) ] ] };
    Wire.Q_store_stats ]

let sample_responses =
  [ Wire.R_unit;
    Wire.R_described
      { relation_name = "r"; leaves = [ ("R.a", 4); ("R.b", 4) ] };
    Wire.R_slots None; Wire.R_slots (Some [ 0; 7 ]);
    Wire.R_mask { mask = [| true; false; true; true; false |]; scanned = 5 };
    Wire.R_rows
      [| [| Enc_relation.C_plain (Value.Text "x");
            Enc_relation.C_bytes "\x00\xffraw" |];
         [| Enc_relation.C_ord { ord = 9; payload = "p" };
            Enc_relation.C_ore
              { ore = Ore.of_symbols [| 1; 0; 2; 2 |]; payload = "q" } |];
         [| Enc_relation.C_nat (Nat.of_int 12345); Enc_relation.C_plain Value.Null |] |];
    Wire.R_tids [| "t0"; "t1\x00" |];
    Wire.R_oram { block = None; touches = 0 };
    Wire.R_oram { block = Some "sealed"; touches = 42 };
    Wire.R_nat (Nat.of_int 99991);
    Wire.R_groups
      [ (Enc_relation.C_bytes "g1", Nat.of_int 10);
        (Enc_relation.C_plain (Value.Int 2), Nat.of_int 0) ];
    Wire.R_error { not_found = true; msg = "no such leaf" };
    Wire.R_error { not_found = false; msg = "bad request" };
    Wire.R_corrupt
      { Integrity.where = "leaf"; leaf = Some "R"; attr = None;
        detail = "row count mismatch" };
    Wire.R_busy;
    Wire.R_batch { results = [] };
    Wire.R_batch
      { results =
          [ [ ([| true; false; true |], 3); ([||], 0) ];
            [];
            [ ([| false |], 1) ] ] };
    Wire.R_store_stats { leaves = [] };
    Wire.R_store_stats
      { leaves =
          [ { Wire.s_label = "R.a";
              s_rows = 6;
              s_attrs =
                [ { Wire.a_attr = "a";
                    a_classes = [ ("0a1b2c3d4e5f6071", 2); ("ffeeddccbbaa0011", 4) ] };
                  { Wire.a_attr = "b"; a_classes = [] } ] };
            { Wire.s_label = "R.b"; s_rows = 0; s_attrs = [] } ] } ]

let test_every_constructor_roundtrips () =
  List.iteri
    (fun i req ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d survives the codec" i)
        true (req_roundtrips req))
    sample_requests;
  List.iteri
    (fun i resp ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d survives the codec" i)
        true (resp_roundtrips resp))
    sample_responses

(* {1 Malformed input: typed rejection, never a crash} *)

(* A decoder outcome we accept on damaged bytes: a decoded value (the
   damage happened to form a valid message) or the documented typed
   failures. Anything else — Stack_overflow, Out_of_memory, a match
   failure — fails the property. *)
let decodes_safely decode s =
  match decode s with
  | _ -> true
  | exception Invalid_argument _ -> true
  | exception Integrity.Corruption _ -> true

let rejects decode s =
  match decode s with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_every_prefix_rejected () =
  let strict_prefixes s =
    List.init (String.length s) (fun n -> String.sub s 0 n)
  in
  List.iter
    (fun req ->
      List.iter
        (fun p ->
          if not (rejects Wire.request_of_string p) then
            Alcotest.failf "truncated request accepted at %d bytes"
              (String.length p))
        (strict_prefixes (Wire.request_to_string req)))
    sample_requests;
  List.iter
    (fun resp ->
      List.iter
        (fun p ->
          if not (rejects Wire.response_of_string p) then
            Alcotest.failf "truncated response accepted at %d bytes"
              (String.length p))
        (strict_prefixes (Wire.response_to_string resp)))
    sample_responses

let flip s pos byte =
  let b = Bytes.of_string s in
  let pos = pos mod Bytes.length b in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 + (byte mod 255))));
  Bytes.to_string b

let suite =
  [ t "every constructor roundtrips" test_every_constructor_roundtrips;
    t "every strict prefix rejected" test_every_prefix_rejected;
    Helpers.qtest ~count:300 "random requests roundtrip" gen_request
      req_roundtrips;
    Helpers.qtest ~count:300 "random responses roundtrip" gen_response
      resp_roundtrips;
    Helpers.qtest ~count:300 "flipped request bytes decode safely"
      (Gen.triple gen_request Gen.nat Gen.nat)
      (fun (req, pos, byte) ->
        decodes_safely Wire.request_of_string
          (flip (Wire.request_to_string req) pos byte));
    Helpers.qtest ~count:300 "flipped response bytes decode safely"
      (Gen.triple gen_response Gen.nat Gen.nat)
      (fun (resp, pos, byte) ->
        decodes_safely Wire.response_of_string
          (flip (Wire.response_to_string resp) pos byte));
    Helpers.qtest ~count:300 "random garbage rejected, never a crash"
      (Gen.string_size (Gen.int_bound 64))
      (fun s ->
        decodes_safely Wire.request_of_string s
        && decodes_safely Wire.response_of_string s
        (* no valid message is shorter than the magic+version header,
           so short strings must be rejected outright *)
        && (String.length s >= 5 || rejects Wire.request_of_string s)) ]

(* SNFT wire-trace recorder ([Snf_obs.Wiretrace]) and leakage profiler
   ([Snf_obs.Leakage]).

   The recorder contract under test: both codecs (JSON and streaming
   binary) are lossless inverses, query marks cut the trace back into
   exactly the executed queries, the decoded views expose the server's
   knowledge (tokens, masks, fetches) and nothing plaintext, the profile
   reconciles with the workload, and — the determinism pillar — a seeded
   workload replayed under SNF_DOMAINS=1 and SNF_DOMAINS=4 produces
   byte-identical traces once the clock is pinned. *)

open Snf_relational
module Scheme = Snf_crypto.Scheme
module Metrics = Snf_obs.Metrics
module Wiretrace = Snf_obs.Wiretrace
module Leakage = Snf_obs.Leakage
open Snf_exec

let t name f = Alcotest.test_case name `Quick f

let with_domains domains f =
  let saved = Parallel.domain_count () in
  Parallel.set_domain_count domains;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_count saved) f

(* One tick per read: timestamps become the sequence 1.0, 2.0, ... so two
   runs that issue the same rounds stamp them identically. *)
let with_fake_clock f =
  let ticks = ref 0.0 in
  Snf_obs.Clock.set (fun () ->
      ticks := !ticks +. 1.0;
      !ticks);
  Fun.protect ~finally:Snf_obs.Clock.use_real f

(* The multi-leaf SNF shape from the obs/batch suites: a ~ b, b ~ c
   forces a/b/c into separate leaves, so queries mix filter fan-out
   (recorded unordered) with joins and fetches. *)
let owner n =
  let r =
    Relation.create
      (Schema.of_attributes
         [ Attribute.int "a"; Attribute.int "b"; Attribute.int "c" ])
      (List.init n (fun i ->
           [| Value.Int (i mod 13); Value.Int (i * 17); Value.Int (i mod 7) |]))
  in
  let policy =
    Snf_core.Policy.create
      [ ("a", Scheme.Det); ("b", Scheme.Ndet); ("c", Scheme.Ope) ]
  in
  let g = Snf_deps.Dep_graph.create [ "a"; "b"; "c" ] in
  let g = Snf_deps.Dep_graph.declare_dependent g "a" "b" in
  let g = Snf_deps.Dep_graph.declare_dependent g "b" "c" in
  System.outsource ~name:"wiretrace" ~graph:g r policy

(* A deterministic workload drawn from a seed: point lookups (with a
   guaranteed repeat for the token-repetition rows of the profile), a
   conjunction, and a range. *)
let workload seed =
  let st = Random.State.make [| seed |] in
  let pick bound = Random.State.int st bound in
  let repeated = Query.point ~select:[ "b" ] [ ("a", Value.Int (pick 13)) ] in
  [ repeated;
    Query.point ~select:[ "b"; "c" ]
      [ ("a", Value.Int (pick 13)); ("c", Value.Int (pick 7)) ];
    repeated;
    Query.range ~select:[ "a" ]
      (let lo = pick 5 in
       [ ("c", Value.Int lo, Value.Int (lo + 2)) ]) ]

let run_all o qs =
  List.iter
    (fun q ->
      match System.query o q with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    qs

let record o qs = snd (System.record_wire_trace (fun () -> run_all o qs))

(* --- codecs ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let o = owner 60 in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let trace = record o (workload 7) in
  Alcotest.(check bool) "trace non-empty" true (trace.Wiretrace.events <> []);
  (match Wiretrace.of_json (Wiretrace.to_json trace) with
   | Ok back -> Alcotest.(check bool) "in-memory json" true (Wiretrace.equal trace back)
   | Error e -> Alcotest.fail ("of_json: " ^ e));
  let path = Filename.temp_file "snft" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Wiretrace.write_json ~path trace;
  match Wiretrace.read_json ~path with
  | Ok back -> Alcotest.(check bool) "file json" true (Wiretrace.equal trace back)
  | Error e -> Alcotest.fail ("read_json: " ^ e)

let test_binary_roundtrip () =
  let o = owner 60 in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let trace = record o (workload 11) in
  (match Wiretrace.of_binary_string (Wiretrace.to_binary_string trace) with
   | Ok back -> Alcotest.(check bool) "in-memory binary" true (Wiretrace.equal trace back)
   | Error e -> Alcotest.fail ("of_binary_string: " ^ e));
  let path = Filename.temp_file "snft" ".snft" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Wiretrace.write_binary ~path trace;
  match Wiretrace.read_binary ~path with
  | Ok back -> Alcotest.(check bool) "file binary" true (Wiretrace.equal trace back)
  | Error e -> Alcotest.fail ("read_binary: " ^ e)

let test_codec_rejects_garbage () =
  (match Wiretrace.of_binary_string "not a trace" with
   | Ok _ -> Alcotest.fail "garbage accepted as binary SNFT"
   | Error _ -> ());
  match Wiretrace.of_json (Snf_obs.Json.Obj [ ("snft", Snf_obs.Json.Int 999) ]) with
  | Ok _ -> Alcotest.fail "unknown version accepted"
  | Error _ -> ()

(* --- query windows --------------------------------------------------------- *)

let test_query_windows () =
  let o = owner 80 in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let qs = workload 3 in
  let views = Leakage.queries (record o qs) in
  Alcotest.(check int) "one view per query" (List.length qs) (List.length views);
  List.iteri
    (fun i v ->
      Alcotest.(check int) "indexed in trace order" i v.Leakage.q_index;
      Alcotest.(check bool) "tokens observed" true (v.Leakage.q_tokens <> []);
      Alcotest.(check bool) "masks observed" true (v.Leakage.q_masks <> []);
      Alcotest.(check bool) "leaves sorted" true
        (List.sort compare v.Leakage.q_leaves = v.Leakage.q_leaves);
      Alcotest.(check bool) "not in a batch" false v.Leakage.q_in_batch)
    views;
  (* Queries 0 and 2 are the same DET point lookup: the server sees the
     same token identity twice — and never a plaintext constant. *)
  let key_of v =
    match v.Leakage.q_tokens with
    | tok :: _ -> (tok.Leakage.t_scheme, tok.Leakage.t_key)
    | [] -> Alcotest.fail "no token"
  in
  let v0 = List.nth views 0 and v2 = List.nth views 2 in
  Alcotest.(check bool) "repeat yields identical token identity" true
    (key_of v0 = key_of v2);
  Alcotest.(check string) "det scheme visible" "det" (fst (key_of v0))

let test_batch_attribution () =
  let o = owner 80 in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let qs = workload 5 in
  let trace =
    snd
      (System.record_wire_trace (fun () ->
           List.iter
             (function Ok _ -> () | Error e -> Alcotest.fail e)
             (System.query_batch o qs)))
  in
  let views = Leakage.queries trace in
  Alcotest.(check int) "one view per batched query" (List.length qs)
    (List.length views);
  List.iter
    (fun v ->
      Alcotest.(check bool) "flagged as batched" true v.Leakage.q_in_batch;
      Alcotest.(check bool) "batch rounds re-attributed" true
        (v.Leakage.q_tokens <> []))
    views

(* --- profile --------------------------------------------------------------- *)

let test_profile_sanity () =
  let o = owner 80 in
  Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
  let qs = workload 9 in
  let trace = record o qs in
  let p = Leakage.profile trace in
  Alcotest.(check int) "queries" (List.length qs) p.Leakage.p_queries;
  Alcotest.(check bool) "rounds observed" true (p.Leakage.p_rounds > 0);
  Alcotest.(check bool) "bytes up" true (p.Leakage.p_bytes_up > 0);
  Alcotest.(check bool) "bytes down" true (p.Leakage.p_bytes_down > 0);
  (* the repeated DET lookup *)
  Alcotest.(check bool) "eq repeats detected" true (p.Leakage.p_eq_repeats >= 1);
  Alcotest.(check bool) "distinct < total" true
    (p.Leakage.p_eq_distinct < p.Leakage.p_eq_total);
  Alcotest.(check bool) "range token observed" true (p.Leakage.p_range_total >= 1);
  Alcotest.(check bool) "co-access pairs" true (p.Leakage.p_cooccur_pairs > 0);
  let volume_occurrences =
    List.fold_left (fun acc (_, n) -> acc + n) 0 p.Leakage.p_volumes
  in
  Alcotest.(check bool) "volume histogram populated" true (volume_occurrences > 0);
  (* publish bumps the exec.leak.* counters by exactly the profile *)
  let before = Metrics.snapshot () in
  Leakage.publish p;
  let deltas = Metrics.counter_diff before (Metrics.snapshot ()) in
  let d name = Option.value (List.assoc_opt name deltas) ~default:0 in
  Alcotest.(check int) "exec.leak.queries" p.Leakage.p_queries (d "exec.leak.queries");
  Alcotest.(check int) "exec.leak.rounds" p.Leakage.p_rounds (d "exec.leak.rounds");
  Alcotest.(check int) "exec.leak.eq.repeats" p.Leakage.p_eq_repeats
    (d "exec.leak.eq.repeats")

(* --- determinism across SNF_DOMAINS ---------------------------------------- *)

(* The only concurrency in the system is the per-leaf filter fan-out;
   the recorder canonicalises it, so with a pinned clock the bytes of
   the whole trace must not depend on the domain count. The owner is
   warmed first so both recorded runs hit identical cache states. *)
let prop_trace_domain_independent =
  Helpers.qtest ~count:10 "seeded trace is byte-identical for domains 1 vs 4"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let o = owner 90 in
      Fun.protect ~finally:(fun () -> System.release o) @@ fun () ->
      let qs = workload seed in
      run_all o qs;
      let go domains =
        with_domains domains (fun () ->
            with_fake_clock (fun () -> Wiretrace.to_binary_string (record o qs)))
      in
      go 1 = go 4)

let suite =
  [ t "json codec round-trips" test_json_roundtrip;
    t "binary codec round-trips" test_binary_roundtrip;
    t "codecs reject garbage" test_codec_rejects_garbage;
    t "marks cut per-query windows" test_query_windows;
    t "batch rounds re-attributed to members" test_batch_attribution;
    t "profile reconciles with workload" test_profile_sanity;
    prop_trace_domain_independent ]
